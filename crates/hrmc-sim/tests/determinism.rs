//! Scheduler-change regression net. The deadline-sweep scheduler must
//! reproduce the *exact* trajectory of the old always-ticking scheduler:
//! the fingerprints below were captured with `examples/snapshot.rs`
//! before the scheduler change and must never drift. A second test pins
//! the weaker, always-required property that identical seeds produce
//! byte-identical reports and event logs; a third pins the point of the
//! change — idle hosts do not tick.

use hrmc_core::{ProtocolConfig, UpdateMode, JIFFY_US};
use hrmc_sim::{SimParams, SimReport, Simulation, TopologyBuilder};
use std::sync::{Arc, Mutex};

/// FNV-1a over a byte stream (stable, dependency-free fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Tee(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for Tee {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The representative lossy topology: 3 receivers, 10 Mbps LAN, 1% loss,
/// 500 KB transfer, 256 KiB buffers, seed 1 — the same run
/// `examples/snapshot.rs` prints.
fn representative_params() -> SimParams {
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 2 * 10_000_000 / 8;
    let topology = TopologyBuilder::new().lan(3, 10_000_000, 0.01);
    let mut p = SimParams::new(protocol, topology, 500_000);
    p.horizon_us = 600 * 1_000_000;
    p
}

fn run_logged() -> (SimReport, Vec<u8>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(representative_params());
    sim.set_event_log(Box::new(Tee(log.clone())));
    let report = sim.run();
    let bytes = log.lock().unwrap().clone();
    (report, bytes)
}

/// Fixture captured on the per-jiffy `Tick` scheduler (pre-change
/// `main`). Every protocol-visible quantity — completion time, stats,
/// drop counts, the full JSONL event log — must match it exactly.
#[test]
fn representative_lossy_run_matches_prescheduler_fixture() {
    let (report, log) = run_logged();
    assert!(report.completed);
    assert_eq!(report.elapsed_us, 2_453_979);
    assert_eq!(report.transfer_bytes, 500_000);
    assert_eq!(format!("{:.6}", report.complete_info_ratio), "0.997214");
    assert_eq!(
        fnv1a(serde_json::to_string(&report.sender).unwrap().as_bytes()),
        0x057c_018f_a07d_dcb1,
        "sender stats diverged from the pre-scheduler-change fixture"
    );
    assert_eq!(
        (
            report.router_loss_drops,
            report.router_overflow_drops,
            report.sender_nic_drops,
            report.nic_rx_drops,
            report.host_backlog_drops,
        ),
        (4, 0, 3, 1, 0)
    );
    assert_eq!(report.final_rtt_us, 172_300);
    assert_eq!(report.final_rate_bps, 1_328_308);
    let receivers_json: String = report
        .receivers
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        fnv1a(receivers_json.as_bytes()),
        0x2a36_017c_f055_c642,
        "receiver stats diverged from the pre-scheduler-change fixture"
    );
    assert_eq!(log.len(), 149_471);
    assert_eq!(log.iter().filter(|&&b| b == b'\n').count(), 1_942);
    assert_eq!(
        fnv1a(&log),
        0x8c34_f207_0126_a09b,
        "JSONL event log diverged from the pinned fixture (captured at \
         event-schema 2: header line + member field; the v1→v2 bump \
         changed only the header's schema digit)"
    );
}

#[test]
fn same_seed_byte_identical_report_and_log() {
    let (a, log_a) = run_logged();
    let (b, log_b) = run_logged();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed must serialize to a byte-identical SimReport"
    );
    assert_eq!(log_a, log_b, "same seed must log identical JSONL");
}

/// The point of the deadline scheduler: a receiver with nothing armed —
/// lossless link (no NAKs), periodic updates disabled, JOIN confirmed —
/// must generate (near) zero ticks between packets, where the old
/// scheduler ticked every host every jiffy of the whole run.
#[test]
fn idle_receiver_generates_no_ticks_between_packets() {
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.update_mode = UpdateMode::Disabled;
    protocol.max_rate = 2 * 10_000_000 / 8;
    let topology = TopologyBuilder::new().lan(2, 10_000_000, 0.0);
    let mut p = SimParams::new(protocol, topology, 500_000);
    p.horizon_us = 600 * 1_000_000;
    let report = Simulation::new(p).run();
    assert!(report.completed, "lossless transfer must complete");
    assert!(report.all_intact());
    let grid_ticks = report.elapsed_us / JIFFY_US;
    for (host, &ticks) in report.host_ticks.iter().enumerate().skip(1) {
        assert!(
            ticks * 20 < grid_ticks,
            "receiver host {host} ticked {ticks}/{grid_ticks} jiffies — \
             the deadline scheduler should have kept it asleep"
        );
    }
}
