//! Property-based tests for the simulator substrate.

use hrmc_sim::loss::{LossModel, LossProcess};
use hrmc_sim::queue::EventQueue;
use hrmc_sim::topology::{test_case, TopologyBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue is a stable priority queue: pops are globally
    /// time-ordered, and equal-time events preserve insertion order.
    #[test]
    fn event_queue_is_stable_and_ordered(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated at equal times");
            }
        }
        // Every scheduled event fired at its scheduled time.
        for (t, i) in popped {
            prop_assert_eq!(t, times[i]);
        }
    }

    /// Interleaved schedule/pop never pops out of order relative to the
    /// current clock.
    #[test]
    fn event_queue_clock_is_monotone(
        ops in proptest::collection::vec((any::<bool>(), 0u64..500), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut last = 0u64;
        for (push, t) in ops {
            if push {
                q.schedule(t, ());
            } else if let Some((when, ())) = q.pop() {
                prop_assert!(when >= last);
                last = when;
            }
        }
    }

    /// Bernoulli loss empirical rate converges to p for any p.
    #[test]
    fn bernoulli_rate_converges(p in 0.0f64..0.3) {
        use rand::{Rng, SeedableRng};
        let mut proc = LossProcess::new(LossModel::Bernoulli(p));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let n = 60_000;
        for _ in 0..n {
            proc.drop(rng.gen(), rng.gen());
        }
        let rate = proc.drops as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.012, "rate {rate} for p {p}");
    }

    /// Gilbert–Elliott empirical loss converges to the closed-form mean
    /// for arbitrary (sane) parameters.
    #[test]
    fn gilbert_elliott_matches_closed_form(
        p_gb in 0.001f64..0.05,
        p_bg in 0.05f64..0.9,
        loss_bad in 0.3f64..1.0,
    ) {
        use rand::{Rng, SeedableRng};
        let model = LossModel::GilbertElliott {
            p_good_to_bad: p_gb,
            p_bad_to_good: p_bg,
            loss_good: 0.0,
            loss_bad,
        };
        let mut proc = LossProcess::new(model);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let n = 300_000;
        for _ in 0..n {
            proc.drop(rng.gen(), rng.gen());
        }
        let rate = proc.drops as f64 / n as f64;
        let expected = model.mean_loss();
        prop_assert!(
            (rate - expected).abs() < 0.01,
            "rate {rate} expected {expected} (p_gb={p_gb} p_bg={p_bg})"
        );
    }

    /// Topology invariants hold for every test case and population.
    #[test]
    fn topologies_are_well_formed(test in 1usize..=5, n in 1usize..=60) {
        let specs = test_case(test, n);
        let total: usize = specs.iter().map(|s| s.receivers).sum();
        prop_assert_eq!(total, n);
        let t = TopologyBuilder::new().groups(&specs, 10_000_000);
        prop_assert_eq!(t.receivers(), n);
        for path in &t.paths {
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0], 0, "every path starts at the backbone");
            for &r in path {
                prop_assert!(r < t.routers.len(), "dangling router index");
            }
        }
        // Sender-rooted tree property the simulator relies on: any two
        // paths sharing a router have it at the same depth.
        for a in &t.paths {
            for b in &t.paths {
                for (i, ra) in a.iter().enumerate() {
                    if let Some(j) = b.iter().position(|rb| rb == ra) {
                        prop_assert_eq!(i, j, "shared router at different depths");
                    }
                }
            }
        }
    }

    /// End-to-end under arbitrary seed and loss: transfers complete,
    /// streams verify, and Hybrid never emits NAK_ERR or unsafe releases.
    #[test]
    fn sim_reliability_invariant(seed in 1u64..500, loss in 0.0f64..0.04) {
        let mut s = hrmc_app::Scenario::lan(2, 10_000_000, 128 * 1024, 120_000)
            .with_loss(loss)
            .with_seed(seed);
        s.horizon_us = 600 * 1_000_000;
        let r = s.run();
        prop_assert!(r.completed, "stalled: seed {seed} loss {loss}");
        prop_assert!(r.all_intact());
        prop_assert_eq!(r.sender.nak_errs_sent, 0);
        prop_assert_eq!(r.sender.unsafe_releases, 0);
    }
}
