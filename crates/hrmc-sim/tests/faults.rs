//! Fault-injection scenarios: the failure-domain acceptance suite.
//!
//! Each test drives a full simulated transfer through one class of
//! injected failure — receiver crash, sender death, link misbehavior,
//! partitions, churn with restart — and checks the protocol's
//! failure-domain handling end to end: ejection frees the transmit
//! window, sender death is declared at every receiver, corruption is
//! audited, and everything stays deterministic under a seed.

use hrmc_core::ProtocolConfig;
use hrmc_sim::faults::{ChurnAction, ChurnEvent, FaultModel, Partition};
use hrmc_sim::topology::TopologyBuilder;
use hrmc_sim::{SimParams, SimReport, Simulation};

/// A LAN scenario: `n` receivers on a 10 Mbps switch with `loss`
/// Bernoulli drop probability, transferring `bytes`.
fn lan_params(n: usize, loss: f64, bytes: u64) -> SimParams {
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 2 * 10_000_000 / 8;
    let topology = TopologyBuilder::new().lan(n, 10_000_000, loss);
    let mut p = SimParams::new(protocol, topology, bytes);
    p.horizon_us = 600 * 1_000_000;
    p
}

#[test]
fn receiver_crash_is_ejected_and_survivors_complete() {
    let mut params = lan_params(3, 0.0, 500_000);
    // Both ejection triggers armed: three unanswered probes, or three
    // seconds of silence — whichever fires first.
    params.protocol.probe_failure_limit = 3;
    params.protocol.member_silence_us = 3_000_000;
    // Kill receiver 1 (host 2) mid-transfer.
    params.faults.churn.push(ChurnEvent {
        at_us: 500_000,
        action: ChurnAction::Crash { host: 2 },
    });
    let report = Simulation::new(params).run();
    assert!(
        report.completed,
        "survivors did not complete after the crash (elapsed {} µs)",
        report.elapsed_us
    );
    assert_eq!(
        report.sender.members_ejected, 1,
        "crashed member not ejected"
    );
    assert_eq!(
        report.sender.leaves, 0,
        "ejection must not count as a leave"
    );
    assert!(
        report.churn_drops > 0,
        "crashed host never dropped a packet"
    );
    // The survivors got every byte, intact.
    assert!(report.receivers[0].intact && report.receivers[0].completed_at.is_some());
    assert!(report.receivers[2].intact && report.receivers[2].completed_at.is_some());
    // The victim did not finish.
    assert!(report.receivers[1].completed_at.is_none());
}

#[test]
fn sender_death_fails_every_receiver() {
    let mut params = lan_params(3, 0.0, 500_000);
    // Presume the sender dead after 2 × keepalive_max of silence.
    params.protocol.sender_death_factor = 2;
    let death_deadline = 2 * params.protocol.keepalive_max;
    params.faults.churn.push(ChurnEvent {
        at_us: 300_000,
        action: ChurnAction::Crash { host: 0 },
    });
    let report = Simulation::new(params).run();
    assert!(
        !report.completed,
        "a dead sender cannot complete a transfer"
    );
    assert_eq!(report.failed_receivers(), 3, "every receiver must give up");
    for r in &report.receivers {
        assert_eq!(r.stats.session_failures, 1);
        assert!(r.completed_at.is_none());
    }
    // The run wound down by itself shortly after the death deadline
    // passed, rather than spinning to the horizon.
    assert!(
        report.elapsed_us < 300_000 + 2 * death_deadline + 1_000_000,
        "run dragged on after all sessions failed: {} µs",
        report.elapsed_us
    );
}

#[test]
fn corruption_duplication_reordering_are_survived_and_audited() {
    let mut params = lan_params(2, 0.0, 300_000);
    params.faults.link = FaultModel {
        corrupt: 0.02,
        duplicate: 0.05,
        reorder: 0.05,
        reorder_max_us: 5_000,
    };
    let report = Simulation::new(params).run();
    assert!(report.completed, "link faults must not stall the transfer");
    assert!(report.all_intact());
    assert!(report.corruption_drops > 0, "corruption fault never fired");
    assert!(
        report.duplicates_injected > 0,
        "duplication fault never fired"
    );
    assert!(report.reorders_injected > 0, "reordering fault never fired");
    // Every corrupt datagram was caught by the checksum and audited at
    // the receiving engine.
    let audited: u64 = report
        .receivers
        .iter()
        .map(|r| r.stats.checksum_failures)
        .sum();
    assert_eq!(audited, report.corruption_drops);
    // Duplicate copies were recognized and dropped by the window.
    let dups: u64 = report
        .receivers
        .iter()
        .map(|r| r.stats.duplicates_dropped)
        .sum();
    assert!(dups > 0, "injected duplicates were never deduplicated");
}

#[test]
fn partition_heals_and_recovery_completes_the_transfer() {
    let mut params = lan_params(3, 0.0, 500_000);
    // Receiver 0 is unreachable (both directions) for a full second.
    params.faults.partitions.push(Partition {
        receivers: vec![0],
        start_us: 200_000,
        end_us: 1_200_000,
    });
    let report = Simulation::new(params).run();
    assert!(report.completed, "transfer did not survive the partition");
    assert!(report.all_intact());
    assert!(
        report.partition_drops > 0,
        "partition never severed a packet"
    );
    // The partitioned receiver recovered everything it missed.
    assert_eq!(report.receivers[0].bytes, 500_000);
    assert!(report.sender.retransmissions > 0 || report.total_naks() > 0);
}

#[test]
fn crashed_receiver_restarts_and_rejoins() {
    let mut params = lan_params(3, 0.0, 500_000);
    params.protocol.probe_failure_limit = 3;
    params.protocol.member_silence_us = 3_000_000;
    params.faults.churn.push(ChurnEvent {
        at_us: 300_000,
        action: ChurnAction::Crash { host: 2 },
    });
    params.faults.churn.push(ChurnEvent {
        at_us: 800_000,
        action: ChurnAction::Restart { host: 2 },
    });
    let report = Simulation::new(params).run();
    assert!(
        report.completed,
        "transfer did not complete around the churn"
    );
    // The revived host performed a brand-new JOIN handshake: the sender
    // processed more JOINs than it has receivers.
    assert!(
        report.sender.joins > 3,
        "restarted receiver never re-joined (joins = {})",
        report.sender.joins
    );
    // The untouched receivers are whole.
    assert!(report.receivers[0].intact && report.receivers[0].completed_at.is_some());
    assert!(report.receivers[2].intact && report.receivers[2].completed_at.is_some());
}

#[test]
fn sender_pause_and_resume_only_delays_the_transfer() {
    let clean = Simulation::new(lan_params(2, 0.0, 300_000)).run();
    let mut params = lan_params(2, 0.0, 300_000);
    params.faults.churn.push(ChurnEvent {
        at_us: 300_000,
        action: ChurnAction::PauseSender,
    });
    params.faults.churn.push(ChurnEvent {
        at_us: 700_000,
        action: ChurnAction::ResumeSender,
    });
    let report = Simulation::new(params).run();
    assert!(report.completed, "transfer did not resume after the stall");
    assert!(report.all_intact());
    assert!(
        report.elapsed_us > clean.elapsed_us,
        "a 400 ms stall must cost wall-clock: {} vs {}",
        report.elapsed_us,
        clean.elapsed_us
    );
}

/// The counters a determinism comparison keys on.
fn fingerprint(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.elapsed_us,
        r.sender.retransmissions,
        r.sender.members_ejected,
        r.partition_drops,
        r.corruption_drops,
        r.duplicates_injected,
        r.churn_drops,
    )
}

#[test]
fn faulty_runs_are_seed_deterministic() {
    let build = || {
        let mut params = lan_params(3, 0.01, 400_000);
        params.protocol.probe_failure_limit = 3;
        params.faults.link = FaultModel {
            corrupt: 0.01,
            duplicate: 0.02,
            reorder: 0.02,
            reorder_max_us: 3_000,
        };
        params.faults.partitions.push(Partition {
            receivers: vec![1],
            start_us: 150_000,
            end_us: 650_000,
        });
        params.faults.churn.push(ChurnEvent {
            at_us: 400_000,
            action: ChurnAction::Crash { host: 3 },
        });
        params
    };
    let a = Simulation::new(build()).run();
    let b = Simulation::new(build()).run();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed, same faults, different run"
    );
    let mut other = build();
    other.seed = 42;
    let c = Simulation::new(other).run();
    assert!(
        fingerprint(&c) != fingerprint(&a),
        "different seeds produced identical faulty runs"
    );
}
