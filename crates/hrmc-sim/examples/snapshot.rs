//! Print the determinism fingerprint of the representative lossy run —
//! the same quantities `tests/determinism.rs` asserts. Used to capture
//! the fixture when the scheduler changes are proposed: run it on the
//! old code, paste the output into the test, run it on the new code.
//!
//! ```sh
//! cargo run --release -p hrmc-sim --example snapshot
//! ```

use hrmc_core::ProtocolConfig;
use hrmc_sim::{SimParams, Simulation, TopologyBuilder};
use std::sync::{Arc, Mutex};

/// FNV-1a over a byte stream (stable, dependency-free fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Tee(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for Tee {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The representative lossy topology: 3 receivers, 10 Mbps LAN, 1% loss,
/// 500 KB transfer, 256 KiB buffers, seed 1.
pub fn representative_params() -> SimParams {
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 2 * 10_000_000 / 8;
    let topology = TopologyBuilder::new().lan(3, 10_000_000, 0.01);
    let mut p = SimParams::new(protocol, topology, 500_000);
    p.horizon_us = 600 * 1_000_000;
    p
}

fn main() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(representative_params());
    sim.set_event_log(Box::new(Tee(log.clone())));
    let report = sim.run();
    let log = log.lock().unwrap();

    println!("completed={}", report.completed);
    println!("elapsed_us={}", report.elapsed_us);
    println!("transfer_bytes={}", report.transfer_bytes);
    println!("complete_info_ratio={:.6}", report.complete_info_ratio);
    println!(
        "sender_fnv={:#018x}",
        fnv1a(serde_json::to_string(&report.sender).unwrap().as_bytes())
    );
    println!(
        "drops=({},{},{},{},{})",
        report.router_loss_drops,
        report.router_overflow_drops,
        report.sender_nic_drops,
        report.nic_rx_drops,
        report.host_backlog_drops
    );
    println!("final_rtt_us={}", report.final_rtt_us);
    println!("final_rate_bps={}", report.final_rate_bps);
    let receivers_json: String = report
        .receivers
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    println!("receivers_fnv={:#018x}", fnv1a(receivers_json.as_bytes()));
    println!("log_fnv={:#018x}", fnv1a(&log));
    println!("log_bytes={}", log.len());
    println!("log_lines={}", log.iter().filter(|&&b| b == b'\n').count());
    // Informational only (these are *expected* to change with the
    // scheduler): the activity metrics.
    println!("events_popped={}", report.events_popped);
    println!("peak_queue_len={}", report.peak_queue_len);
    println!("host_ticks={:?}", report.host_ticks);
    // HRMC_SNAPSHOT_LOG=<path> dumps the raw JSONL event log, for
    // diffing scheduler changes line by line against a saved fixture.
    if let Ok(p) = std::env::var("HRMC_SNAPSHOT_LOG") {
        std::fs::write(p, &log[..]).unwrap();
    }
}
