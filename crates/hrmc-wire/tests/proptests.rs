//! Property-based tests for the wire format: arbitrary packets round-trip,
//! arbitrary garbage never decodes into an inconsistent packet, and
//! sequence arithmetic is a total serial order on windows < 2^31.

use bytes::Bytes;
use hrmc_wire::{seq_cmp, seq_le, seq_lt, Flags, Header, Packet, PacketType, HEADER_LEN};
use proptest::prelude::*;

fn arb_ptype() -> impl Strategy<Value = PacketType> {
    (0usize..PacketType::ALL.len()).prop_map(|i| PacketType::ALL[i])
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        arb_ptype(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(src_port, dst_port, seq, rate_adv, length, tries, ptype, urg, fin)| Header {
                src_port,
                dst_port,
                seq,
                rate_adv,
                length,
                checksum: 0,
                tries,
                ptype,
                flags: Flags { urg, fin },
            },
        )
}

proptest! {
    #[test]
    fn header_round_trips(h in arb_header()) {
        let decoded = Header::decode(&h.encode()).expect("well-formed header must decode");
        prop_assert_eq!(decoded, h);
    }

    #[test]
    fn data_packet_round_trips(
        src in any::<u16>(),
        dst in any::<u16>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let pkt = Packet::data(src, dst, seq, Bytes::from(payload));
        let decoded = Packet::decode(&pkt.encode()).expect("encoded packet must decode");
        prop_assert_eq!(decoded.header.seq, seq);
        prop_assert_eq!(decoded.payload, pkt.payload);
    }

    #[test]
    fn control_packet_round_trips(h in arb_header()) {
        let mut pkt = Packet { header: h, payload: Bytes::new() };
        // DATA length must match the (empty) payload to round-trip.
        if pkt.header.ptype == PacketType::Data {
            pkt.header.length = 0;
        }
        let wire = pkt.encode();
        let decoded = Packet::decode(&wire).expect("decode");
        prop_assert_eq!(decoded.header.ptype, h.ptype);
        prop_assert_eq!(decoded.header.seq, h.seq);
        prop_assert_eq!(decoded.header.rate_adv, h.rate_adv);
        prop_assert_eq!(decoded.header.flags, h.flags);
    }

    /// Arbitrary bytes either fail to decode, or decode into a packet whose
    /// re-encoding equals the input (i.e. decode is a partial inverse of
    /// encode and never fabricates state).
    #[test]
    fn garbage_never_decodes_inconsistently(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(pkt) = Packet::decode(&bytes) {
            prop_assert_eq!(pkt.encode(), bytes);
        }
    }

    /// Flipping any single bit of a valid encoding must be detected.
    #[test]
    fn single_bit_corruption_detected(
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        flip in any::<(usize, u8)>(),
    ) {
        let wire = Packet::data(9, 10, seq, Bytes::from(payload)).encode();
        let (pos, bit) = flip;
        let mut corrupted = wire.clone();
        let i = pos % corrupted.len();
        corrupted[i] ^= 1 << (bit % 8);
        if corrupted != wire {
            prop_assert!(Packet::decode(&corrupted).is_err());
        }
    }

    /// Serial arithmetic: for offsets below 2^31, ordering matches integer
    /// ordering regardless of the window base (wrap-around safe).
    #[test]
    fn seq_order_is_translation_invariant(base in any::<u32>(), a in 0u32..1 << 30, b in 0u32..1 << 30) {
        let sa = base.wrapping_add(a);
        let sb = base.wrapping_add(b);
        prop_assert_eq!(seq_lt(sa, sb), a < b);
        prop_assert_eq!(seq_le(sa, sb), a <= b);
        prop_assert_eq!(seq_cmp(sa, sb).signum(), (a as i64 - b as i64).signum() as i32);
    }

    #[test]
    fn short_buffers_always_truncated(bytes in proptest::collection::vec(any::<u8>(), 0..HEADER_LEN)) {
        prop_assert_eq!(Packet::decode(&bytes), Err(hrmc_wire::WireError::Truncated));
    }
}
