//! Packet types (paper Table 1).
//!
//! Nine types come from the original RMC protocol; `UPDATE` and `PROBE`
//! were added by H-RMC to carry the hybrid reliability machinery.

/// The eleven RMC / H-RMC packet types (paper Table 1).
///
/// The discriminant values are the on-wire 6-bit type codes. The paper does
/// not publish numeric codes, so we assign them in Table 1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum PacketType {
    /// Used by sender for data transmissions and retransmissions.
    Data = 0,
    /// Used by receiver to request data retransmissions.
    Nak = 1,
    /// Used by sender to inform a receiver it cannot satisfy a
    /// retransmission request (only possible in pure-NAK RMC mode, where
    /// buffers may be released before all receivers have the data).
    NakErr = 2,
    /// Used by a receiver to request to join the multicast group.
    Join = 3,
    /// Used by sender to confirm that a join request has been accepted.
    JoinResponse = 4,
    /// Used by a receiver to inform the sender that it is leaving the group.
    Leave = 5,
    /// Used by sender to confirm that a leave request has been received.
    LeaveResponse = 6,
    /// Used by a receiver to request a reduced transmission rate
    /// ("rate request"). The suggested rate rides in the header's
    /// rate-advertisement field; the URG flag marks a critical-region
    /// request that stops forward transmission for two RTTs.
    Control = 7,
    /// Used by sender to keep the connection active during idle time.
    /// Carries the sequence number of the last packet transmitted so that
    /// receivers can detect the loss of the tail of a burst.
    Keepalive = 8,
    /// H-RMC only: used by the receiver to send state information (its
    /// next-expected sequence number) to the sender on the update timer.
    Update = 9,
    /// H-RMC only: used by the sender to obtain state information from
    /// receivers it has not heard from before releasing buffer space.
    Probe = 10,
    /// Extension (not in the paper's Table 1): an XOR parity packet
    /// covering a block of DATA packets, implementing the paper's
    /// future-work item (4), "incorporation of forward error correction,
    /// particularly for wireless environments". `seq` names the first
    /// packet of the covered block; the payload carries the block's
    /// per-packet lengths followed by the XOR body (see
    /// `hrmc-core::fec`).
    Parity = 11,
}

impl PacketType {
    /// All packet types: Table 1 order plus the PARITY extension.
    pub const ALL: [PacketType; 12] = [
        PacketType::Data,
        PacketType::Nak,
        PacketType::NakErr,
        PacketType::Join,
        PacketType::JoinResponse,
        PacketType::Leave,
        PacketType::LeaveResponse,
        PacketType::Control,
        PacketType::Keepalive,
        PacketType::Update,
        PacketType::Probe,
        PacketType::Parity,
    ];

    /// Decode a 6-bit wire code into a packet type.
    pub fn from_wire(code: u8) -> Option<PacketType> {
        PacketType::ALL.get(code as usize).copied()
    }

    /// The on-wire 6-bit type code.
    #[inline]
    pub fn to_wire(self) -> u8 {
        self as u8
    }

    /// `true` for the two types introduced by H-RMC (absent in RMC).
    pub fn is_hrmc_only(self) -> bool {
        matches!(self, PacketType::Update | PacketType::Probe)
    }

    /// `true` for packets that flow from sender to receivers.
    pub fn is_sender_originated(self) -> bool {
        matches!(
            self,
            PacketType::Data
                | PacketType::NakErr
                | PacketType::JoinResponse
                | PacketType::LeaveResponse
                | PacketType::Keepalive
                | PacketType::Probe
                | PacketType::Parity
        )
    }

    /// `true` for packets that flow from a receiver to the sender
    /// ("feedback" in the paper's terminology).
    pub fn is_receiver_originated(self) -> bool {
        !self.is_sender_originated()
    }

    /// `true` for feedback packets that carry the receiver's next-expected
    /// sequence number, and therefore refresh the sender's per-receiver
    /// state (paper §3: "Since both rate requests and NAKs carry the next
    /// expected sequence number, this field is updated whenever any
    /// feedback arrives").
    pub fn carries_receiver_state(self) -> bool {
        matches!(
            self,
            PacketType::Nak | PacketType::Control | PacketType::Update
        )
    }
}

impl std::fmt::Display for PacketType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PacketType::Data => "DATA",
            PacketType::Nak => "NAK",
            PacketType::NakErr => "NAK_ERR",
            PacketType::Join => "JOIN",
            PacketType::JoinResponse => "JOIN_RESPONSE",
            PacketType::Leave => "LEAVE",
            PacketType::LeaveResponse => "LEAVE_RESPONSE",
            PacketType::Control => "CONTROL",
            PacketType::Keepalive => "KEEPALIVE",
            PacketType::Update => "UPDATE",
            PacketType::Probe => "PROBE",
            PacketType::Parity => "PARITY",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_types_plus_parity_extension() {
        // Table 1 lists 9 RMC types plus UPDATE and PROBE; PARITY is our
        // FEC extension (paper future-work item 4).
        assert_eq!(PacketType::ALL.len(), 12);
        let hrmc_only: Vec<_> = PacketType::ALL
            .iter()
            .filter(|t| t.is_hrmc_only())
            .collect();
        assert_eq!(hrmc_only.len(), 2);
        assert_eq!(PacketType::Parity.to_wire(), 11);
    }

    #[test]
    fn wire_codes_round_trip() {
        for t in PacketType::ALL {
            assert_eq!(PacketType::from_wire(t.to_wire()), Some(t));
        }
    }

    #[test]
    fn unknown_codes_rejected() {
        for code in 12u8..64 {
            assert_eq!(PacketType::from_wire(code), None);
        }
    }

    #[test]
    fn direction_partition_is_total() {
        for t in PacketType::ALL {
            assert_ne!(t.is_sender_originated(), t.is_receiver_originated());
        }
    }

    #[test]
    fn feedback_types_carry_state() {
        assert!(PacketType::Nak.carries_receiver_state());
        assert!(PacketType::Control.carries_receiver_state());
        assert!(PacketType::Update.carries_receiver_state());
        assert!(!PacketType::Join.carries_receiver_state());
        assert!(!PacketType::Data.carries_receiver_state());
    }

    #[test]
    fn display_matches_table1_names() {
        assert_eq!(PacketType::NakErr.to_string(), "NAK_ERR");
        assert_eq!(PacketType::JoinResponse.to_string(), "JOIN_RESPONSE");
        assert_eq!(PacketType::Update.to_string(), "UPDATE");
    }
}
