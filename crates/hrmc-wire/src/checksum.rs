//! The 16-bit one's-complement Internet checksum (RFC 1071), as used by
//! TCP/UDP and by the kernel H-RMC driver to validate packets ("the RMC
//! protocol checks the packets for correctness", paper §2).

/// Compute the Internet checksum over `data`.
///
/// The sum is the one's-complement of the one's-complement sum of all
/// 16-bit words; an odd trailing byte is padded with zero, exactly as in
/// RFC 1071. A packet whose stored checksum field was zeroed before the
/// computation will verify iff recomputing over the received bytes
/// (checksum field zeroed again) yields the stored value.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(raw_sum(data))
}

/// Unfolded 32-bit sum of the big-endian 16-bit words of `data` (odd
/// trailing byte zero-padded). Every byte contributes one additive term,
/// so a field's contribution can be subtracted back out exactly.
fn raw_sum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// End-around-carry fold of a 32-bit sum into 16 bits.
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verify data whose checksum was computed with the checksum field zeroed
/// and then stored at `data[at..at + 2]`.
///
/// Copy-free: rather than cloning the buffer to zero the field, the two
/// stored bytes' additive contributions (high byte for even offsets, low
/// byte for odd — RFC 1071 words are big-endian) are subtracted from the
/// unfolded sum, which is exact because the end-around-carry fold only
/// happens afterwards.
pub fn verify_with_field(data: &[u8], at: usize) -> bool {
    if data.len() < at + 2 {
        return false;
    }
    let stored = u16::from_be_bytes([data[at], data[at + 1]]);
    let mut sum = raw_sum(data);
    sum -= u32::from(data[at]) << (8 * ((at + 1) & 1));
    sum -= u32::from(data[at + 1]) << (8 * (at & 1));
    !fold(sum) == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_input() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        // [0xab] pads to [0xab, 0x00].
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data: Vec<u8> = (0u8..64).collect();
        let good = internet_checksum(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(
                    internet_checksum(&corrupted),
                    good,
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn verify_with_field_round_trip() {
        let mut data: Vec<u8> = (0u8..32).collect();
        data[6] = 0;
        data[7] = 0;
        let ck = internet_checksum(&data);
        data[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_with_field(&data, 6));
        data[0] ^= 0x40;
        assert!(!verify_with_field(&data, 6));
    }

    #[test]
    fn verify_with_field_bounds() {
        assert!(!verify_with_field(&[0u8; 3], 2));
        assert!(!verify_with_field(&[], 0));
    }

    /// The historical copy-and-zero verification the copy-free path must
    /// agree with bit-for-bit.
    fn verify_with_copy(data: &[u8], at: usize) -> bool {
        if data.len() < at + 2 {
            return false;
        }
        let stored = u16::from_be_bytes([data[at], data[at + 1]]);
        let mut scratch = data.to_vec();
        scratch[at] = 0;
        scratch[at + 1] = 0;
        internet_checksum(&scratch) == stored
    }

    /// Property test: copy-free verification agrees with the copy-and-zero
    /// method on random buffers (valid, corrupted, even/odd lengths and
    /// offsets), using a small deterministic LCG so the test needs no
    /// external crates.
    #[test]
    fn verify_without_copy_agrees_with_copy_and_zero() {
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for case in 0..2000 {
            let len = 2 + (next() as usize % 96);
            let mut data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let at = next() as usize % (len - 1);
            // Install a valid checksum for the chosen field position.
            data[at] = 0;
            data[at + 1] = 0;
            let ck = internet_checksum(&data);
            data[at..at + 2].copy_from_slice(&ck.to_be_bytes());
            assert_eq!(
                verify_with_field(&data, at),
                verify_with_copy(&data, at),
                "valid packet disagreement: case {case} len {len} at {at}"
            );
            assert!(verify_with_field(&data, at));
            // Corrupt a random bit (possibly inside the checksum field).
            let flip = next() as usize % len;
            data[flip] ^= 1 << (next() % 8);
            assert_eq!(
                verify_with_field(&data, at),
                verify_with_copy(&data, at),
                "corrupted packet disagreement: case {case} len {len} at {at} flip {flip}"
            );
        }
    }
}
