//! The 16-bit one's-complement Internet checksum (RFC 1071), as used by
//! TCP/UDP and by the kernel H-RMC driver to validate packets ("the RMC
//! protocol checks the packets for correctness", paper §2).

/// Compute the Internet checksum over `data`.
///
/// The sum is the one's-complement of the one's-complement sum of all
/// 16-bit words; an odd trailing byte is padded with zero, exactly as in
/// RFC 1071. A packet whose stored checksum field was zeroed before the
/// computation will verify iff recomputing over the received bytes
/// (checksum field zeroed again) yields the stored value.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verify data whose checksum was computed with the checksum field zeroed
/// and then stored at `data[at..at + 2]`.
pub fn verify_with_field(data: &[u8], at: usize) -> bool {
    if data.len() < at + 2 {
        return false;
    }
    let stored = u16::from_be_bytes([data[at], data[at + 1]]);
    let mut scratch = data.to_vec();
    scratch[at] = 0;
    scratch[at + 1] = 0;
    internet_checksum(&scratch) == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_input() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        // [0xab] pads to [0xab, 0x00].
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data: Vec<u8> = (0u8..64).collect();
        let good = internet_checksum(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(
                    internet_checksum(&corrupted),
                    good,
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn verify_with_field_round_trip() {
        let mut data: Vec<u8> = (0u8..32).collect();
        data[6] = 0;
        data[7] = 0;
        let ck = internet_checksum(&data);
        data[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_with_field(&data, 6));
        data[0] ^= 0x40;
        assert!(!verify_with_field(&data, 6));
    }

    #[test]
    fn verify_with_field_bounds() {
        assert!(!verify_with_field(&[0u8; 3], 2));
        assert!(!verify_with_field(&[], 0));
    }
}
