//! The 20-byte RMC/H-RMC packet header (paper Figure 1).

use crate::types::PacketType;
use crate::Seq;

/// Size of the fixed header in bytes. The paper: "All RMC segments are
/// prefixed with a 20-byte header".
pub const HEADER_LEN: usize = 20;

/// Byte offset of the checksum field within the header (used when zeroing
/// the field for checksum computation).
pub const CHECKSUM_OFFSET: usize = 16;

/// The URG / FIN flag bits, packed into the top bits of the final header
/// byte (the type byte). URG marks a critical-region rate request that
/// stops forward transmission for two RTTs; FIN marks the end of the data
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Urgent: on a CONTROL packet, the receive window has filled into the
    /// critical region and the sender must stop forward transmission for
    /// two round-trip times regardless of the advertised rate (paper §2,
    /// flow-control rule 3).
    pub urg: bool,
    /// Finish: the sending application has closed the stream; the sequence
    /// number of the FIN-bearing packet is the last of the connection.
    pub fin: bool,
}

const FLAG_URG: u8 = 0b1000_0000;
const FLAG_FIN: u8 = 0b0100_0000;
const TYPE_MASK: u8 = 0b0011_1111;

impl Flags {
    /// Encode into the flag bits of the type byte.
    #[inline]
    pub fn to_wire(self) -> u8 {
        (if self.urg { FLAG_URG } else { 0 }) | (if self.fin { FLAG_FIN } else { 0 })
    }

    /// Decode from a raw type byte (ignores the type bits).
    #[inline]
    pub fn from_wire(byte: u8) -> Flags {
        Flags {
            urg: byte & FLAG_URG != 0,
            fin: byte & FLAG_FIN != 0,
        }
    }
}

/// The fixed 20-byte header carried by every RMC/H-RMC packet.
///
/// Field semantics per packet type (the paper reuses fields rather than
/// defining per-type layouts; we document our reuse precisely):
///
/// | Type | `seq` | `length` |
/// |------|-------|----------|
/// | DATA | sequence number of this packet | payload bytes |
/// | NAK | first missing sequence number | count of consecutive missing packets |
/// | NAK_ERR | first unsatisfiable sequence number | count |
/// | JOIN / LEAVE | echo of the triggering data packet's seq (RTT sample) | 0 |
/// | JOIN_RESPONSE / LEAVE_RESPONSE | echo of the request's seq | 0 |
/// | CONTROL | receiver's next expected seq (`rcv_nxt`) | free receive-window bytes |
/// | KEEPALIVE | seq of the last packet transmitted | 0 |
/// | UPDATE | receiver's next expected seq (`rcv_nxt`) | echo of probe nonce (0 if unsolicited) |
/// | PROBE | seq the sender wants confirmed received (release point) | probe nonce for RTT measurement |
///
/// `rate_adv` always carries the sender's current advertised transmission
/// rate in bytes/second on sender-originated packets, and the receiver's
/// suggested rate on CONTROL packets. On NAK packets, whose `seq` names
/// the first missing packet of a gap, `rate_adv` instead piggybacks the
/// receiver's next-expected sequence number — the paper requires that
/// "both rate requests and NAKs carry the next expected sequence number"
/// so the sender's membership state stays exact even when the NAKed gap
/// starts beyond `rcv_nxt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Sending process's port.
    pub src_port: u16,
    /// Destination (multicast group) port.
    pub dst_port: u16,
    /// Sequence number; see the type table above.
    pub seq: Seq,
    /// Rate advertisement in bytes/second (paper: "the sender uses this
    /// field to inform the receivers of the current transmission rate, and
    /// the receivers use it in feedback messages to suggest a lower
    /// sending rate").
    pub rate_adv: u32,
    /// Length field; payload bytes for DATA, otherwise see the type table.
    pub length: u32,
    /// Internet checksum over header (checksum field zeroed) + payload.
    pub checksum: u16,
    /// Transmission attempt counter for this packet (0 on first send).
    /// Karn's algorithm skips RTT samples from packets with `tries > 0`.
    pub tries: u8,
    /// Packet type (Table 1).
    pub ptype: PacketType,
    /// URG / FIN flags.
    pub flags: Flags,
}

impl Header {
    /// Construct a header with zero checksum and default flags.
    pub fn new(ptype: PacketType, src_port: u16, dst_port: u16, seq: Seq) -> Header {
        Header {
            src_port,
            dst_port,
            seq,
            rate_adv: 0,
            length: 0,
            checksum: 0,
            tries: 0,
            ptype,
            flags: Flags::default(),
        }
    }

    /// Serialize into exactly [`HEADER_LEN`] bytes (network byte order).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        self.encode_into(&mut buf);
        buf
    }

    /// Serialize into the first [`HEADER_LEN`] bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf.len() < HEADER_LEN`.
    pub fn encode_into(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.rate_adv.to_be_bytes());
        buf[12..16].copy_from_slice(&self.length.to_be_bytes());
        buf[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        buf[18] = self.tries;
        buf[19] = self.flags.to_wire() | (self.ptype.to_wire() & TYPE_MASK);
    }

    /// Parse a header from the first [`HEADER_LEN`] bytes of `buf`.
    ///
    /// Returns `None` if `buf` is too short or the type code is unknown.
    pub fn decode(buf: &[u8]) -> Option<Header> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        let ptype = PacketType::from_wire(buf[19] & TYPE_MASK)?;
        Some(Header {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            rate_adv: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            length: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            checksum: u16::from_be_bytes([buf[16], buf[17]]),
            tries: buf[18],
            ptype,
            flags: Flags::from_wire(buf[19]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            src_port: 0x1234,
            dst_port: 0x5678,
            seq: 0xdead_beef,
            rate_adv: 1_250_000,
            length: 1400,
            checksum: 0xabcd,
            tries: 3,
            ptype: PacketType::Data,
            flags: Flags {
                urg: true,
                fin: false,
            },
        }
    }

    #[test]
    fn header_is_twenty_bytes() {
        assert_eq!(HEADER_LEN, 20);
        assert_eq!(sample().encode().len(), 20);
    }

    #[test]
    fn field_offsets_match_figure_1() {
        let h = sample();
        let b = h.encode();
        // Row 1: ports.
        assert_eq!(&b[0..2], &[0x12, 0x34]);
        assert_eq!(&b[2..4], &[0x56, 0x78]);
        // Row 2: sequence number.
        assert_eq!(&b[4..8], &[0xde, 0xad, 0xbe, 0xef]);
        // Row 3: rate advertisement.
        assert_eq!(u32::from_be_bytes([b[8], b[9], b[10], b[11]]), 1_250_000);
        // Row 4: length.
        assert_eq!(u32::from_be_bytes([b[12], b[13], b[14], b[15]]), 1400);
        // Row 5: checksum, tries, flags|type.
        assert_eq!(&b[16..18], &[0xab, 0xcd]);
        assert_eq!(b[18], 3);
        assert_eq!(b[19] & TYPE_MASK, PacketType::Data.to_wire());
        assert_ne!(b[19] & FLAG_URG, 0);
        assert_eq!(b[19] & FLAG_FIN, 0);
    }

    #[test]
    fn round_trip_all_types_and_flags() {
        for ptype in PacketType::ALL {
            for (urg, fin) in [(false, false), (true, false), (false, true), (true, true)] {
                let mut h = sample();
                h.ptype = ptype;
                h.flags = Flags { urg, fin };
                let decoded = Header::decode(&h.encode()).expect("decode");
                assert_eq!(decoded, h);
            }
        }
    }

    #[test]
    fn short_buffer_rejected() {
        let b = sample().encode();
        for n in 0..HEADER_LEN {
            assert!(Header::decode(&b[..n]).is_none());
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut b = sample().encode();
        b[19] = (b[19] & !TYPE_MASK) | 0x3f; // type code 63: undefined
        assert!(Header::decode(&b).is_none());
    }

    #[test]
    fn checksum_offset_constant_is_correct() {
        let mut h = sample();
        h.checksum = 0xbeef;
        let b = h.encode();
        assert_eq!(
            u16::from_be_bytes([b[CHECKSUM_OFFSET], b[CHECKSUM_OFFSET + 1]]),
            0xbeef
        );
    }
}
