//! # hrmc-wire
//!
//! Wire format for the H-RMC reliable multicast protocol (McKinley, Rao,
//! Wright — SC'99). This crate defines the 20-byte RMC/H-RMC packet header
//! (paper Figure 1), the eleven packet types (paper Table 1), the Internet
//! checksum used to validate packets, and the [`Packet`] encode/decode
//! round-trip used by every other crate in the workspace.
//!
//! The header layout follows the paper:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-------------------------------+-------------------------------+
//! |          Source Port          |       Destination Port        |
//! +-------------------------------+-------------------------------+
//! |                        Sequence Number                        |
//! +---------------------------------------------------------------+
//! |                      Rate Advertisement                       |
//! +---------------------------------------------------------------+
//! |                            Length                             |
//! +-------------------------------+---------------+---------------+
//! |           Checksum            |     Tries     |U|F|   Type    |
//! +-------------------------------+---------------+---------------+
//! ```
//!
//! The paper's Figure 1 draws `URG`/`FIN` on a separate row but states the
//! header is exactly 20 bytes; we therefore pack the two flags into the top
//! bits of the final byte alongside the 6-bit type code, which is the only
//! packing consistent with both the figure and the stated size.

pub mod checksum;
pub mod header;
pub mod packet;
pub mod types;

pub use checksum::internet_checksum;
pub use header::{Flags, Header, HEADER_LEN};
pub use packet::{Packet, WireError};
pub use types::PacketType;

/// Sequence number type used throughout the protocol. H-RMC assigns one
/// sequence number per packet (not per byte, unlike TCP); see paper §2:
/// "fragments this data stream into a sequence of data packets, each of
/// which is assigned a sequence number".
pub type Seq = u32;

/// Compare two sequence numbers under wrap-around (RFC 1982 style serial
/// arithmetic). Returns the signed distance `a - b` interpreted modulo 2^32.
///
/// ```
/// use hrmc_wire::seq_cmp;
/// assert!(seq_cmp(5, 3) > 0);
/// assert!(seq_cmp(3, 5) < 0);
/// assert!(seq_cmp(0, u32::MAX) > 0); // 0 is "after" u32::MAX
/// ```
#[inline]
pub fn seq_cmp(a: Seq, b: Seq) -> i32 {
    a.wrapping_sub(b) as i32
}

/// `true` when `a` is strictly before `b` in sequence space.
#[inline]
pub fn seq_lt(a: Seq, b: Seq) -> bool {
    seq_cmp(a, b) < 0
}

/// `true` when `a` is before or equal to `b` in sequence space.
#[inline]
pub fn seq_le(a: Seq, b: Seq) -> bool {
    seq_cmp(a, b) <= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_arithmetic_basics() {
        assert_eq!(seq_cmp(10, 10), 0);
        assert_eq!(seq_cmp(11, 10), 1);
        assert_eq!(seq_cmp(10, 11), -1);
        assert!(seq_lt(9, 10));
        assert!(!seq_lt(10, 10));
        assert!(seq_le(10, 10));
    }

    #[test]
    fn seq_arithmetic_wraps() {
        let near_max = u32::MAX - 2;
        assert!(seq_lt(near_max, near_max.wrapping_add(5)));
        assert!(seq_le(near_max, near_max.wrapping_add(5)));
        assert!(!seq_lt(near_max.wrapping_add(5), near_max));
        assert_eq!(seq_cmp(2, u32::MAX), 3);
    }
}
