//! Complete packets: header + payload, with checksum computation and
//! validation on encode/decode.

use bytes::Bytes;

use crate::checksum::{internet_checksum, verify_with_field};
use crate::header::{Header, CHECKSUM_OFFSET, HEADER_LEN};
use crate::types::PacketType;
use crate::Seq;

/// Errors produced when decoding bytes into a [`Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`HEADER_LEN`] bytes.
    Truncated,
    /// The 6-bit type code does not name a packet type.
    UnknownType,
    /// The stored checksum does not match the computed checksum.
    BadChecksum,
    /// A DATA packet whose header `length` disagrees with the payload size.
    LengthMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "packet shorter than the 20-byte header",
            WireError::UnknownType => "unknown packet type code",
            WireError::BadChecksum => "checksum verification failed",
            WireError::LengthMismatch => "header length disagrees with payload size",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// A complete H-RMC packet: one header plus (for DATA packets) a payload.
///
/// Payloads are [`Bytes`] so that a packet buffered in the send window, a
/// retransmission of it, and the copy handed to a receiving application all
/// share one allocation — the same economy the kernel driver gets from
/// `sk_buff` reference counting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The fixed header. `header.checksum` holds the last computed or
    /// received checksum; [`Packet::encode`] recomputes it.
    pub header: Header,
    /// Payload; empty for every type except DATA.
    pub payload: Bytes,
}

impl Packet {
    /// Build a DATA packet carrying `payload`.
    pub fn data(src_port: u16, dst_port: u16, seq: Seq, payload: Bytes) -> Packet {
        let mut header = Header::new(PacketType::Data, src_port, dst_port, seq);
        header.length = payload.len() as u32;
        Packet { header, payload }
    }

    /// Build a payload-less control packet of the given type.
    pub fn control(ptype: PacketType, src_port: u16, dst_port: u16, seq: Seq) -> Packet {
        Packet {
            header: Header::new(ptype, src_port, dst_port, seq),
            payload: Bytes::new(),
        }
    }

    /// Total on-wire size in bytes.
    #[inline]
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serialize to bytes, computing and embedding the checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Serialize into a caller-owned buffer, clearing it first — lets a
    /// send loop reuse one allocation across packets instead of paying a
    /// `Vec` per send.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.wire_len());
        let mut header = self.header;
        header.checksum = 0;
        buf.extend_from_slice(&header.encode());
        buf.extend_from_slice(&self.payload);
        let ck = internet_checksum(buf);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 2].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse and validate a packet from received bytes. Checksum
    /// verification runs directly over `buf` (no scratch copy); the only
    /// copy made is the payload handed to the caller.
    pub fn decode(buf: &[u8]) -> Result<Packet, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let header = Header::decode(buf).ok_or(WireError::UnknownType)?;
        if !verify_with_field(buf, CHECKSUM_OFFSET) {
            return Err(WireError::BadChecksum);
        }
        let payload = Bytes::copy_from_slice(&buf[HEADER_LEN..]);
        if header.ptype == PacketType::Data && header.length as usize != payload.len() {
            return Err(WireError::LengthMismatch);
        }
        Ok(Packet { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let payload = Bytes::from_static(b"hello multicast world");
        let pkt = Packet::data(7000, 7001, 42, payload.clone());
        let wire = pkt.encode();
        assert_eq!(wire.len(), HEADER_LEN + payload.len());
        let decoded = Packet::decode(&wire).expect("decode");
        assert_eq!(decoded.header.ptype, PacketType::Data);
        assert_eq!(decoded.header.seq, 42);
        assert_eq!(decoded.header.length, payload.len() as u32);
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn control_round_trip_all_types() {
        for ptype in PacketType::ALL {
            if ptype == PacketType::Data {
                continue;
            }
            let pkt = Packet::control(ptype, 1, 2, 99);
            let decoded = Packet::decode(&pkt.encode()).expect("decode");
            assert_eq!(decoded.header.ptype, ptype);
            assert!(decoded.payload.is_empty());
        }
    }

    #[test]
    fn corrupted_packet_rejected() {
        let pkt = Packet::data(1, 2, 3, Bytes::from_static(b"payload bytes"));
        let wire = pkt.encode();
        for i in 0..wire.len() {
            let mut corrupted = wire.clone();
            corrupted[i] ^= 0x01;
            let result = Packet::decode(&corrupted);
            assert!(
                result.is_err(),
                "bit flip at byte {i} produced a valid packet: {result:?}"
            );
        }
    }

    #[test]
    fn truncation_rejected() {
        let wire = Packet::data(1, 2, 3, Bytes::from_static(b"xyz")).encode();
        assert_eq!(Packet::decode(&wire[..10]), Err(WireError::Truncated));
        // Cutting payload bytes breaks the checksum (and the length check).
        assert!(Packet::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        // Hand-build a DATA packet whose header length lies, with a
        // checksum that is nevertheless correct for the bytes.
        let mut pkt = Packet::data(1, 2, 3, Bytes::from_static(b"abcd"));
        pkt.header.length = 3;
        let wire = pkt.encode();
        assert_eq!(Packet::decode(&wire), Err(WireError::LengthMismatch));
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let mut buf = Vec::new();
        let big = Packet::data(1, 2, 3, Bytes::from(vec![7u8; 512]));
        big.encode_into(&mut buf);
        assert_eq!(buf, big.encode());
        let cap = buf.capacity();
        let small = Packet::control(PacketType::Nak, 1, 2, 9);
        small.encode_into(&mut buf);
        assert_eq!(buf, small.encode());
        assert_eq!(buf.capacity(), cap, "buffer reallocation defeats reuse");
        assert!(Packet::decode(&buf).is_ok());
    }

    #[test]
    fn empty_data_packet_is_valid() {
        let pkt = Packet::data(1, 2, 3, Bytes::new());
        let decoded = Packet::decode(&pkt.encode()).expect("decode");
        assert!(decoded.payload.is_empty());
        assert_eq!(decoded.header.length, 0);
    }
}
