//! Small statistics over repeated runs: the paper plots "the average
//! throughput over five tests of the given kernel buffer size".

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0 for fewer than two points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Mean / min / max / stddev of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample (empty samples give all-zero summaries).
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            mean: mean(xs),
            min: xs
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY),
            max: xs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(f64::NEG_INFINITY),
            stddev: stddev(xs),
            n: xs.len(),
        }
        .normalize()
    }

    fn normalize(mut self) -> Summary {
        if self.n == 0 {
            self.min = 0.0;
            self.max = 0.0;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.n, 0);
    }
}
