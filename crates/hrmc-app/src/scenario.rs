//! A [`Scenario`] names one experimental configuration — protocol mode,
//! receiver population, network, buffer size, transfer size, application
//! I/O — and runs it through the simulator. Every figure harness in
//! `hrmc-experiments` is a sweep over scenarios.

use hrmc_core::{HealthConfig, ProtocolConfig, ReliabilityMode};
use hrmc_sim::{
    ChurnAction, ChurnEvent, FaultPlan, GroupSpec, IoProfile, LinkSchedule, LossModel, Partition,
    SimParams, SimReport, Simulation, TopologyBuilder,
};

/// Which network world the scenario runs in.
#[derive(Debug, Clone)]
pub enum NetKind {
    /// The §5.1 testbed: one shared Ethernet segment.
    Lan {
        /// Uniform loss rate split 90/10 between segment and NICs.
        loss: f64,
    },
    /// The §5.2 simulation study: characteristic groups behind a backbone.
    Groups(Vec<GroupSpec>),
    /// A wireless cell: shared medium with a (typically Gilbert–Elliott)
    /// loss model on each receiver's tail link.
    Wireless {
        /// The tail-link loss model.
        model: LossModel,
    },
}

/// One experimental configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label used in tables and bench ids.
    pub name: String,
    /// RMC baseline or H-RMC.
    pub mode: ReliabilityMode,
    /// Number of receivers.
    pub receivers: usize,
    /// Link/network speed in bits per second.
    pub bandwidth_bps: u64,
    /// Per-socket kernel buffer size in bytes (the paper's sweep knob).
    pub buffer: usize,
    /// Transfer size in bytes.
    pub transfer_bytes: u64,
    /// Sender application I/O.
    pub source: IoProfile,
    /// Receiver application I/O.
    pub sink: IoProfile,
    /// Network world.
    pub net: NetKind,
    /// Sender NIC transmit-queue capacity (Figure 13's mechanism). The
    /// default of 30 packets keeps the standing queue's contribution to
    /// measured RTTs modest (~34 ms at 10 Mbps), as a short device ring
    /// would.
    pub sender_txqueue: usize,
    /// Router output-queue capacity in packets (both directions). The
    /// default of 512 models a 1999 switch; large-population sweeps size
    /// it to the group, because synchronized feedback waves (the JOIN
    /// burst, aligned periodic-UPDATE timers) arrive as O(receivers)
    /// packets in one tick and anything shed there turns into retries
    /// whose stale echoes inflate the sender's RTT estimate.
    pub router_queue: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulation horizon in µs.
    pub horizon_us: u64,
    /// Optional XOR-parity FEC block size (the extension of paper
    /// future-work item 4); `None` runs the published protocol.
    pub fec_k: Option<usize>,
    /// SRM-style local recovery (the extension of paper future-work
    /// item 3); `false` keeps the paper's centralized recovery.
    pub local_recovery: bool,
    /// Host-CPU speed scale (1.0 = the paper's measured 300 MHz
    /// constants; the Figure 13 experiment lowers it to model the real
    /// testbed's DMA-overlapped transmit path, which could outrun the
    /// 100 Mbps NIC and make the card drop).
    pub cpu_scale: f64,
    /// Sender rate cap as a multiple of the wire speed. The default of
    /// 0.95 models the kernel's `max_snd_rate_wnd` calibrated just under
    /// the device rate: a driver cannot push a card faster than its wire,
    /// and pinning the data rate at exactly the drain rate leaves no
    /// headroom for probes and keepalives, so the transmit ring creeps
    /// full and the card starts dropping the sender's own packets. The
    /// Figure 13 experiment raises the factor to reproduce exactly that
    /// overdrive regime.
    pub max_rate_factor: f64,
    /// Injected faults: link misbehavior, partitions, host churn. Empty
    /// by default (a fault-free run).
    pub faults: FaultPlan,
    /// Scheduled link dynamics: capacity collapse/recovery ramps,
    /// bufferbloat, jitter spikes, asymmetric up-paths, receiver
    /// migration. Empty by default (a static network).
    pub links: LinkSchedule,
    /// Eject a member after this many consecutive unanswered PROBEs
    /// (0 = never; the protocol default).
    pub probe_failure_limit: u32,
    /// Eject a member silent for this long, µs (0 = never).
    pub member_silence_us: u64,
    /// Receivers presume the sender dead after `keepalive_max` × this
    /// factor of silence (0 = never).
    pub sender_death_factor: u32,
    /// Receivers give up after this many unanswered JOINs (0 = retry
    /// forever).
    pub join_retry_limit: u32,
    /// Cap on unicast PROBEs per sender tick (0 = probe every eligible
    /// laggard, the published protocol). Large populations set this to
    /// pace probe fan-out instead of bursting O(receivers) packets in
    /// one tick.
    pub probe_batch_limit: u32,
    /// Arm the online health monitor with this rule set (`None` leaves
    /// the run bit-identical to an unmonitored one; armed runs add only
    /// `health_alert` lines and `SimReport.alerts`).
    pub health: Option<HealthConfig>,
}

impl Scenario {
    /// An H-RMC memory-to-memory LAN transfer — the workhorse default.
    pub fn lan(receivers: usize, bandwidth_bps: u64, buffer: usize, transfer: u64) -> Scenario {
        Scenario {
            name: format!("lan-{receivers}r-{}K", buffer / 1024),
            mode: ReliabilityMode::Hybrid,
            receivers,
            bandwidth_bps,
            buffer,
            transfer_bytes: transfer,
            source: IoProfile::Memory,
            sink: IoProfile::Memory,
            net: NetKind::Lan { loss: 0.0 },
            sender_txqueue: 30,
            router_queue: 512,
            seed: 1,
            horizon_us: 1_800 * 1_000_000,
            fec_k: None,
            local_recovery: false,
            cpu_scale: 1.0,
            max_rate_factor: 0.95,
            faults: FaultPlan::default(),
            links: LinkSchedule::default(),
            probe_failure_limit: 0,
            member_silence_us: 0,
            sender_death_factor: 0,
            join_retry_limit: 0,
            probe_batch_limit: 0,
            health: None,
        }
    }

    /// A wireless-cell scenario: `n` receivers behind Gilbert–Elliott
    /// tail links (the regime the FEC extension targets).
    pub fn wireless(
        receivers: usize,
        bandwidth_bps: u64,
        buffer: usize,
        transfer: u64,
        model: LossModel,
    ) -> Scenario {
        let mut s = Scenario::lan(receivers, bandwidth_bps, buffer, transfer);
        s.name = format!("wireless-{receivers}r-{}K", buffer / 1024);
        s.net = NetKind::Wireless { model };
        s
    }

    /// A characteristic-group scenario (the §5.2 Tests 1–5).
    pub fn groups(
        specs: Vec<GroupSpec>,
        bandwidth_bps: u64,
        buffer: usize,
        transfer: u64,
    ) -> Scenario {
        let receivers = specs.iter().map(|s| s.receivers).sum();
        Scenario {
            name: format!("groups-{receivers}r-{}K", buffer / 1024),
            mode: ReliabilityMode::Hybrid,
            receivers,
            bandwidth_bps,
            buffer,
            transfer_bytes: transfer,
            source: IoProfile::Memory,
            sink: IoProfile::Memory,
            net: NetKind::Groups(specs),
            sender_txqueue: 30,
            router_queue: 512,
            seed: 1,
            horizon_us: 1_800 * 1_000_000,
            fec_k: None,
            local_recovery: false,
            cpu_scale: 1.0,
            max_rate_factor: 0.95,
            faults: FaultPlan::default(),
            links: LinkSchedule::default(),
            probe_failure_limit: 0,
            member_silence_us: 0,
            sender_death_factor: 0,
            join_retry_limit: 0,
            probe_batch_limit: 0,
            health: None,
        }
    }

    /// Switch to disk-to-disk application I/O (paper §5.1 disk tests).
    pub fn disk_to_disk(mut self) -> Scenario {
        self.source = IoProfile::disk_read();
        self.sink = IoProfile::disk_write();
        self
    }

    /// Switch to the RMC pure-NAK baseline.
    pub fn rmc(mut self) -> Scenario {
        self.mode = ReliabilityMode::RmcNakOnly;
        self
    }

    /// Set the seed (runs are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Set the LAN loss rate (panics on non-LAN scenarios).
    pub fn with_loss(mut self, loss: f64) -> Scenario {
        match &mut self.net {
            NetKind::Lan { loss: l } => *l = loss,
            _ => panic!("uniform loss only applies to Lan scenarios"),
        }
        self
    }

    /// Enable XOR-parity FEC with block size `k`.
    pub fn with_fec(mut self, k: usize) -> Scenario {
        self.fec_k = Some(k);
        self
    }

    /// Enable SRM-style local recovery (multicast NAKs, peer repairs).
    pub fn with_local_recovery(mut self) -> Scenario {
        self.local_recovery = true;
        self
    }

    /// Cap unicast PROBE fan-out at `limit` per sender tick (0 =
    /// unlimited, the published protocol).
    pub fn with_probe_batch(mut self, limit: u32) -> Scenario {
        self.probe_batch_limit = limit;
        self
    }

    /// Install a complete fault plan (link faults, partitions, churn).
    pub fn with_faults(mut self, faults: FaultPlan) -> Scenario {
        self.faults = faults;
        self
    }

    /// Install a link-dynamics schedule (capacity ramps, bufferbloat,
    /// jitter spikes, up-path impairment, receiver migration).
    pub fn with_links(mut self, links: LinkSchedule) -> Scenario {
        self.links = links;
        self
    }

    /// Arm the online health monitor with `cfg` (see
    /// [`hrmc_core::HealthMonitor`]); disarmed configs are dropped so
    /// the run keeps the zero-cost no-observer path.
    pub fn with_health(mut self, cfg: HealthConfig) -> Scenario {
        self.health = cfg.armed().then_some(cfg);
        self
    }

    /// Crash receiver `receiver` (0-based) at `at_us`. Arms the sender's
    /// failure-domain detectors with defaults (3 unanswered PROBEs or
    /// 3 s of silence) if the scenario has not set them, so survivors
    /// complete instead of stalling on the corpse.
    pub fn with_receiver_crash(mut self, receiver: usize, at_us: u64) -> Scenario {
        self.faults.churn.push(ChurnEvent {
            at_us,
            action: ChurnAction::Crash { host: receiver + 1 },
        });
        if self.probe_failure_limit == 0 {
            self.probe_failure_limit = 3;
        }
        if self.member_silence_us == 0 {
            self.member_silence_us = 3_000_000;
        }
        self
    }

    /// Partition the listed receivers (0-based) off the network for
    /// `[start_us, end_us)`; the partition heals at `end_us`.
    pub fn with_partition(mut self, receivers: Vec<usize>, start_us: u64, end_us: u64) -> Scenario {
        self.faults.partitions.push(Partition {
            receivers,
            start_us,
            end_us,
        });
        self
    }

    /// Set the failure-domain detectors explicitly (0 disables each):
    /// PROBE-failure ejection, silence ejection, and sender-death
    /// presumption (`keepalive_max` × `death_factor`).
    pub fn with_failure_domains(
        mut self,
        probe_failure_limit: u32,
        member_silence_us: u64,
        sender_death_factor: u32,
    ) -> Scenario {
        self.probe_failure_limit = probe_failure_limit;
        self.member_silence_us = member_silence_us;
        self.sender_death_factor = sender_death_factor;
        self
    }

    /// The protocol configuration this scenario induces. The rate cap
    /// (the kernel's `max_snd_rate_wnd` bound) is the smaller of
    /// `max_rate_factor` × the wire speed and the host-CPU transmit
    /// ceiling (one 300 MHz CPU cannot emit packets faster than ~195 µs
    /// apiece; see [`hrmc_sim::cpu_tx_rate_bps`]).
    pub fn protocol(&self) -> ProtocolConfig {
        let mut p = match self.mode {
            ReliabilityMode::Hybrid => ProtocolConfig::hrmc(),
            ReliabilityMode::RmcNakOnly => ProtocolConfig::rmc(),
        }
        .with_buffer(self.buffer);
        let cpu_cap = (hrmc_sim::cpu_tx_rate_bps(p.segment_size) as f64 / self.cpu_scale) as u64;
        let wire_cap = (self.bandwidth_bps as f64 / 8.0 * self.max_rate_factor) as u64;
        p.max_rate = wire_cap.min(cpu_cap).max(p.min_rate);
        if let Some(k) = self.fec_k {
            p = p.with_fec(k);
        }
        if self.local_recovery {
            p = p.with_local_recovery();
        }
        p.probe_failure_limit = self.probe_failure_limit;
        p.member_silence_us = self.member_silence_us;
        p.sender_death_factor = self.sender_death_factor;
        p.join_retry_limit = self.join_retry_limit;
        p.probe_batch_limit = self.probe_batch_limit;
        p
    }

    /// Build the simulator parameters.
    pub fn params(&self) -> SimParams {
        let mut builder = TopologyBuilder::new();
        builder.sender_txqueue = self.sender_txqueue;
        builder.router_queue = self.router_queue;
        let topology = match &self.net {
            NetKind::Lan { loss } => builder.lan(self.receivers, self.bandwidth_bps, *loss),
            NetKind::Groups(specs) => builder.groups(specs, self.bandwidth_bps),
            NetKind::Wireless { model } => {
                builder.wireless(self.receivers, self.bandwidth_bps, *model)
            }
        };
        let mut params = SimParams::new(self.protocol(), topology, self.transfer_bytes);
        params.source = self.source;
        params.sink = self.sink;
        params.seed = self.seed;
        params.horizon_us = self.horizon_us;
        params.cpu_scale = self.cpu_scale;
        params.faults = self.faults.clone();
        params.links = self.links.clone();
        params.health = self.health.clone();
        params
    }

    /// Run once.
    pub fn run(&self) -> SimReport {
        Simulation::new(self.params()).run()
    }

    /// Run `n` times with seeds `1..=n` (the paper averages five runs).
    pub fn run_seeds(&self, n: u64) -> Vec<SimReport> {
        (1..=n)
            .map(|seed| self.clone().with_seed(seed).run())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrmc_sim::CharacteristicGroup;

    #[test]
    fn lan_scenario_runs_and_completes() {
        let report = Scenario::lan(2, 10_000_000, 256 * 1024, 500_000).run();
        assert!(report.completed);
        assert!(report.all_intact());
        assert!(report.throughput_mbps > 0.0);
    }

    #[test]
    fn disk_scenario_bounded_by_write_rate() {
        // The receiver writes at 6 MB/s = 48 Mbit/s; on a 100 Mbps wire
        // the disk, not the network, must bound the transfer. (Disk
        // pacing can even slightly *beat* an unpaced memory run by
        // avoiding loss-driven rate halvings, so no mem-vs-disk ordering
        // is asserted — only the physical bound.)
        let disk = Scenario::lan(1, 100_000_000, 512 * 1024, 4_000_000)
            .disk_to_disk()
            .run();
        assert!(disk.completed);
        assert!(disk.all_intact());
        assert!(
            disk.throughput_mbps < 52.0,
            "disk-bound transfer exceeded the write rate: {} Mbps",
            disk.throughput_mbps
        );
    }

    #[test]
    fn rmc_builder_switches_mode() {
        let s = Scenario::lan(1, 10_000_000, 64 * 1024, 100_000).rmc();
        assert_eq!(s.protocol().mode, ReliabilityMode::RmcNakOnly);
        let report = s.run();
        assert_eq!(report.sender.probes_sent, 0);
    }

    #[test]
    fn groups_scenario_counts_receivers() {
        let s = Scenario::groups(
            vec![
                GroupSpec {
                    group: CharacteristicGroup::B,
                    receivers: 3,
                },
                GroupSpec {
                    group: CharacteristicGroup::C,
                    receivers: 2,
                },
            ],
            10_000_000,
            256 * 1024,
            200_000,
        );
        assert_eq!(s.receivers, 5);
        let report = s.run();
        assert_eq!(report.receivers.len(), 5);
        assert!(report.completed);
        assert!(report.all_intact());
    }

    #[test]
    fn wireless_fec_reduces_retransmissions() {
        let base = Scenario::wireless(
            2,
            10_000_000,
            256 * 1024,
            400_000,
            LossModel::wireless_fast_fading(),
        );
        // Parity packets consume RNG rolls, so the loss patterns of the
        // two runs differ packet-by-packet; compare aggregates over
        // several seeds instead of one paired run.
        let seeds = 6;
        let mut retrans_plain = 0u64;
        let mut retrans_fec = 0u64;
        let mut recoveries = 0u64;
        for r in base.clone().run_seeds(seeds) {
            assert!(r.completed && r.all_intact());
            retrans_plain += r.sender.retransmissions;
        }
        for r in base.with_fec(8).run_seeds(seeds) {
            assert!(r.completed && r.all_intact());
            retrans_fec += r.sender.retransmissions;
            recoveries += r
                .receivers
                .iter()
                .map(|x| x.stats.fec_recoveries)
                .sum::<u64>();
        }
        assert!(recoveries > 0, "no FEC recoveries on the fading channel");
        assert!(
            retrans_fec < retrans_plain,
            "FEC should reduce aggregate retransmissions: {retrans_fec} vs {retrans_plain}"
        );
    }

    #[test]
    fn crash_scenario_ejects_and_survivors_complete() {
        let s = Scenario::lan(3, 10_000_000, 256 * 1024, 400_000)
            .with_receiver_crash(1, 150_000)
            .with_seed(2);
        assert_eq!(s.protocol().probe_failure_limit, 3);
        let report = s.run();
        assert!(report.completed, "survivors must finish the transfer");
        assert_eq!(report.sender.members_ejected, 1);
        assert_eq!(report.failed_receivers(), 0);
        // Same scenario, same seed: bit-identical outcome.
        let again = s.run();
        assert_eq!(report.elapsed_us, again.elapsed_us);
        assert_eq!(report.churn_drops, again.churn_drops);
    }

    #[test]
    fn partition_scenario_heals_and_completes() {
        let report = Scenario::lan(2, 10_000_000, 256 * 1024, 300_000)
            .with_partition(vec![0], 100_000, 700_000)
            .run();
        assert!(report.completed);
        assert!(report.all_intact());
        assert!(report.partition_drops > 0, "partition never bit");
    }

    #[test]
    fn seeds_vary_runs_deterministically() {
        let s = Scenario::lan(2, 10_000_000, 128 * 1024, 300_000).with_loss(0.01);
        let a = s.clone().with_seed(3).run();
        let b = s.clone().with_seed(3).run();
        assert_eq!(a.elapsed_us, b.elapsed_us);
        let reports = s.run_seeds(3);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.completed && r.all_intact()));
    }
}
