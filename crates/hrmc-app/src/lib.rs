//! # hrmc-app
//!
//! Application-level building blocks shared by the experiment harnesses,
//! benches, and examples: a [`Scenario`] abstraction that turns "the
//! paper's test such-and-such" into a runnable simulation, plus small
//! statistics helpers for averaging repeated runs (the paper reports
//! "the average throughput over five tests of the given kernel buffer
//! size").

pub mod scenario;
pub mod summary;

pub use scenario::{NetKind, Scenario};
pub use summary::{mean, stddev, Summary};
