//! CLI driver for the in-tree fuzz harness.
//!
//! ```text
//! hrmc-fuzz <wire|sender|receiver|all> [--iters N] [--seed S]
//! hrmc-fuzz gen-corpus
//! ```
//!
//! Exit status 0 means every episode completed without a panic; a
//! crashing episode aborts with a replay line naming the seed.

use hrmc_fuzz::{fuzz_receiver, fuzz_sender, fuzz_wire, write_corpus, FuzzReport};

fn usage() -> ! {
    eprintln!("usage: hrmc-fuzz <wire|sender|receiver|all|gen-corpus> [--iters N] [--seed S]");
    std::process::exit(2);
}

fn print_report(target: &str, r: &FuzzReport) {
    println!(
        "{target}: episodes={} decode_ok={} decode_err={} packets_fed={} malformed_flagged={}",
        r.episodes, r.decode_ok, r.decode_err, r.packets_fed, r.malformed_flagged
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first() else { usage() };
    let mut iters: u64 = 10_000;
    let mut seed: u64 = 1;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    match target.as_str() {
        "gen-corpus" => {
            let n = write_corpus().expect("write corpus");
            println!("wrote {n} seeds to {}", hrmc_fuzz::corpus_dir().display());
        }
        "wire" => print_report("wire", &fuzz_wire(seed, iters)),
        "sender" => print_report("sender", &fuzz_sender(seed, iters)),
        "receiver" => print_report("receiver", &fuzz_receiver(seed, iters)),
        "all" => {
            // Engine episodes are ~10x heavier than single decodes;
            // scale them down so `all` stays within one budget knob.
            print_report("wire", &fuzz_wire(seed, iters));
            print_report("sender", &fuzz_sender(seed, iters / 10 + 1));
            print_report("receiver", &fuzz_receiver(seed, iters / 10 + 1));
        }
        _ => usage(),
    }
}
