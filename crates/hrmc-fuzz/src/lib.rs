//! In-tree fuzz harness for the H-RMC packet-in surfaces.
//!
//! The build environment has no `cargo-fuzz`/libFuzzer, so this crate
//! implements the same discipline as a plain library: deterministic,
//! seed-addressable episode generators that throw adversarial input at
//! the three trust boundaries —
//!
//! 1. **Wire decode** ([`fuzz_wire`]): arbitrary bytes, checked-in
//!    corpus seeds, and structure-aware mutations of valid packets fed
//!    to [`Packet::decode`] and [`Header::decode`]. Anything that
//!    decodes must re-encode and decode back to the same packet.
//! 2. **Receiver engine** ([`fuzz_receiver`]): a live receiver (every
//!    protocol mode) fed hostile but wire-reachable packets interleaved
//!    with ticks and reads. Must never panic; suspicious input lands in
//!    `stats.malformed_packets`, not in a crash.
//! 3. **Sender engine** ([`fuzz_sender`]): same contract for the sender
//!    with a rotating cast of forged peers.
//!
//! Every episode derives its RNG from `(seed, episode index)`, so a CI
//! failure message names the exact episode to replay locally.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use bytes::Bytes;
use hrmc_core::{PeerId, ProtocolConfig, ReceiverEngine, SenderEngine};
use hrmc_wire::{Flags, Header, Packet, PacketType, HEADER_LEN};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Outcome counters from one fuzz run. The run itself is the assertion
/// (an episode that panics aborts the process with a replay line); the
/// counters exist so smoke tests can check the harness actually
/// exercised both accept and reject paths.
#[derive(Debug, Default, Clone, Copy)]
pub struct FuzzReport {
    /// Episodes completed.
    pub episodes: u64,
    /// `Packet::decode` calls returning `Ok`.
    pub decode_ok: u64,
    /// `Packet::decode` calls returning `Err`.
    pub decode_err: u64,
    /// Packets fed into an engine's `handle_packet`.
    pub packets_fed: u64,
    /// Packets an engine flagged via `stats.malformed_packets`.
    pub malformed_flagged: u64,
}

/// Directory holding the checked-in corpus seed files (`*.hex`, one
/// whitespace-separated hex byte stream per file).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Load corpus seeds from `corpus_dir()`. Missing or malformed files
/// are skipped — the fuzzers fall back to [`builtin_seeds`] so the
/// harness works even from a stripped checkout.
pub fn load_corpus() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(corpus_dir()) else {
        return out;
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hex"))
        .collect();
    paths.sort();
    for p in paths {
        let Ok(text) = std::fs::read_to_string(&p) else {
            continue;
        };
        if let Some(bytes) = parse_hex(&text) {
            out.push(bytes);
        }
    }
    out
}

/// Parse a whitespace-separated stream of two-digit hex bytes,
/// tolerating `#` comment lines.
pub fn parse_hex(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            out.push(u8::from_str_radix(tok, 16).ok()?);
        }
    }
    Some(out)
}

/// Representative valid encodings of every packet type plus boundary
/// field values — the in-code twin of the checked-in corpus.
pub fn builtin_seeds() -> Vec<Vec<u8>> {
    let mut seeds = Vec::new();
    for ptype in PacketType::ALL {
        if ptype == PacketType::Data {
            continue;
        }
        let mut pkt = Packet::control(ptype, 7000, 7001, 42);
        pkt.header.length = 3;
        pkt.header.rate_adv = 1_000_000;
        seeds.push(pkt.encode());
    }
    seeds.push(Packet::data(7000, 7001, 0, Bytes::new()).encode());
    seeds.push(Packet::data(7000, 7001, 1, Bytes::copy_from_slice(b"payload")).encode());
    seeds.push(Packet::data(7000, 7001, u32::MAX, Bytes::copy_from_slice(&[0xAA; 64])).encode());
    // Boundary control packets: max span, wrapped sequence, urgent stop.
    let mut nak = Packet::control(PacketType::Nak, 8000, 7001, u32::MAX - 1);
    nak.header.length = u32::MAX;
    seeds.push(nak.encode());
    let mut ctl = Packet::control(PacketType::Control, 8000, 7001, 0x8000_0000);
    ctl.header.flags = Flags {
        urg: true,
        fin: false,
    };
    ctl.header.rate_adv = 1;
    seeds.push(ctl.encode());
    let mut ka = Packet::control(PacketType::Keepalive, 7000, 7001, 0);
    ka.header.flags = Flags {
        urg: false,
        fin: true,
    };
    seeds.push(ka.encode());
    seeds
}

fn episode_rng(seed: u64, i: u64) -> SmallRng {
    // splitmix64 of the episode index, xored into the run seed, so
    // consecutive episodes draw unrelated streams.
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    SmallRng::seed_from_u64(seed ^ (z ^ (z >> 31)))
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[(rng.gen::<u64>() % items.len() as u64) as usize]
}

/// Field values chosen to straddle every interesting boundary: zero,
/// one, the control-span clamp, the signed-wrap midpoint, and the top.
const EDGE_U32: [u32; 9] = [
    0,
    1,
    2,
    hrmc_core::MAX_CONTROL_SPAN - 1,
    hrmc_core::MAX_CONTROL_SPAN,
    hrmc_core::MAX_CONTROL_SPAN + 1,
    i32::MAX as u32,
    0x8000_0000,
    u32::MAX,
];

fn edge_or_random_u32(rng: &mut SmallRng) -> u32 {
    if rng.gen_bool(0.6) {
        *pick(rng, &EDGE_U32)
    } else {
        rng.gen::<u32>()
    }
}

/// A structure-aware arbitrary packet: any type, extreme field values.
/// DATA keeps `length == payload.len()` (the decode invariant every
/// driver enforces before an engine sees the packet); all other fields
/// and types are unconstrained.
pub fn arbitrary_packet(rng: &mut SmallRng) -> Packet {
    let ptype = *pick(rng, &PacketType::ALL);
    let mut header = Header::new(ptype, rng.gen::<u16>(), rng.gen::<u16>(), 0);
    header.seq = edge_or_random_u32(rng);
    header.rate_adv = edge_or_random_u32(rng);
    header.tries = rng.gen::<u8>();
    header.flags = Flags {
        urg: rng.gen_bool(0.25),
        fin: rng.gen_bool(0.25),
    };
    let payload = if ptype == PacketType::Data || (ptype == PacketType::Parity && rng.gen_bool(0.7))
    {
        let len = (rng.gen::<u64>() % 256) as usize;
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        Bytes::from(v)
    } else {
        Bytes::new()
    };
    header.length = if ptype == PacketType::Data {
        payload.len() as u32
    } else {
        edge_or_random_u32(rng)
    };
    Packet { header, payload }
}

/// Mutate an encoded packet: bit flips, truncation, extension, field
/// stomps, or splicing with a second buffer.
fn mutate(rng: &mut SmallRng, mut buf: Vec<u8>, other: &[u8]) -> Vec<u8> {
    match rng.gen::<u64>() % 5 {
        0 => {
            // Bit flips.
            let flips = 1 + (rng.gen::<u64>() % 8) as usize;
            for _ in 0..flips {
                if buf.is_empty() {
                    break;
                }
                let i = (rng.gen::<u64>() % buf.len() as u64) as usize;
                buf[i] ^= 1 << (rng.gen::<u64>() % 8);
            }
        }
        1 => {
            // Truncate anywhere, including inside the header.
            let keep = (rng.gen::<u64>() % (buf.len() as u64 + 1)) as usize;
            buf.truncate(keep);
        }
        2 => {
            // Extend with garbage (length-field mismatch pressure).
            let extra = (rng.gen::<u64>() % 64) as usize;
            let mut tail = vec![0u8; extra];
            rng.fill_bytes(&mut tail);
            buf.extend_from_slice(&tail);
        }
        3 => {
            // Stomp one 4-byte field with an edge value.
            if buf.len() >= HEADER_LEN {
                let off = [0usize, 4, 8, 12][(rng.gen::<u64>() % 4) as usize];
                buf[off..off + 4].copy_from_slice(&edge_or_random_u32(rng).to_be_bytes());
            }
        }
        _ => {
            // Splice: head of one packet, tail of another.
            if !other.is_empty() {
                let cut = (rng.gen::<u64>() % (buf.len() as u64 + 1)) as usize;
                let from = (rng.gen::<u64>() % other.len() as u64) as usize;
                buf.truncate(cut);
                buf.extend_from_slice(&other[from..]);
            }
        }
    }
    buf
}

fn guarded<F: FnOnce() -> R, R>(target: &str, seed: u64, episode: u64, f: F) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            eprintln!(
                "fuzz target `{target}` panicked: replay with --seed {seed} \
                 (episode {episode})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Fuzz `Packet::decode` / `Header::decode` for `iters` inputs.
pub fn fuzz_wire(seed: u64, iters: u64) -> FuzzReport {
    let mut corpus = load_corpus();
    if corpus.is_empty() {
        corpus = builtin_seeds();
    }
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let mut rng = episode_rng(seed, i);
        let input = guarded("wire", seed, i, || {
            let other = pick(&mut rng, &corpus).clone();
            match rng.gen::<u64>() % 4 {
                0 => {
                    // Fully arbitrary bytes, biased short to hammer the
                    // header boundary.
                    let len = if rng.gen_bool(0.5) {
                        (rng.gen::<u64>() % 32) as usize
                    } else {
                        (rng.gen::<u64>() % 1600) as usize
                    };
                    let mut v = vec![0u8; len];
                    rng.fill_bytes(&mut v);
                    v
                }
                1 => {
                    let base = pick(&mut rng, &corpus).clone();
                    mutate(&mut rng, base, &other)
                }
                2 => {
                    let base = arbitrary_packet(&mut rng).encode();
                    mutate(&mut rng, base, &other)
                }
                _ => arbitrary_packet(&mut rng).encode(),
            }
        });
        guarded("wire", seed, i, || {
            // Header::decode must be total over any byte string.
            let _ = Header::decode(&input);
            match Packet::decode(&input) {
                Ok(pkt) => {
                    report.decode_ok += 1;
                    // Accepted packets must round-trip exactly.
                    let re = pkt.encode();
                    let again = Packet::decode(&re).expect("re-encoded packet must decode");
                    assert_eq!(again, pkt, "decode/encode round-trip diverged");
                }
                Err(_) => report.decode_err += 1,
            }
        });
        report.episodes += 1;
    }
    report
}

fn fuzz_configs() -> Vec<ProtocolConfig> {
    vec![
        ProtocolConfig::hrmc().with_buffer(32 * 1024),
        ProtocolConfig::hrmc().with_buffer(32 * 1024).with_fec(4),
        ProtocolConfig::hrmc()
            .with_buffer(32 * 1024)
            .with_local_recovery(),
        ProtocolConfig::rmc().with_buffer(32 * 1024),
    ]
}

/// Fuzz the receiver engine: `iters` episodes, each a fresh engine fed
/// a mix of honest traffic and hostile wire-reachable packets.
pub fn fuzz_receiver(seed: u64, iters: u64) -> FuzzReport {
    let configs = fuzz_configs();
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let mut rng = episode_rng(seed, i);
        let cfg = configs[(i % configs.len() as u64) as usize].clone();
        guarded("receiver", seed, i, || {
            let mut r = ReceiverEngine::new(cfg, rng.gen::<u16>(), 7001, 0);
            let mut now: u64 = 0;
            // Attach the window with a little honest in-order data so
            // hostile control packets land on live state.
            let honest = 1 + (rng.gen::<u64>() % 4);
            for seq in 0..honest {
                let pkt = Packet::data(7000, 7001, seq as u32, Bytes::copy_from_slice(&[7u8; 32]));
                r.handle_packet(&pkt, now);
                report.packets_fed += 1;
            }
            let steps = 8 + (rng.gen::<u64>() % 25);
            for _ in 0..steps {
                now += rng.gen::<u64>() % 50_000;
                match rng.gen::<u64>() % 8 {
                    0 => r.on_tick(now),
                    1 => {
                        let mut buf = [0u8; 512];
                        let _ = r.read(&mut buf, now);
                    }
                    2 => {
                        while r.poll_output().is_some() {}
                        while r.poll_event().is_some() {}
                    }
                    3 => r.note_checksum_failure(now),
                    _ => {
                        let pkt = arbitrary_packet(&mut rng);
                        r.handle_packet(&pkt, now);
                        report.packets_fed += 1;
                    }
                }
            }
            // Drain everything once more; poll paths must also be total.
            r.on_tick(now + 1_000_000);
            while r.poll_output().is_some() {}
            while r.poll_event().is_some() {}
            report.malformed_flagged += r.stats.malformed_packets;
        });
        report.episodes += 1;
    }
    report
}

/// Fuzz the sender engine: `iters` episodes of forged peer traffic
/// against a sender mid-transfer.
pub fn fuzz_sender(seed: u64, iters: u64) -> FuzzReport {
    let configs = fuzz_configs();
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let mut rng = episode_rng(seed, i);
        let cfg = configs[(i % configs.len() as u64) as usize].clone();
        guarded("sender", seed, i, || {
            let mut s = SenderEngine::new(cfg, 7000, 7001, rng.gen::<u32>() % 1024, 0);
            let mut now: u64 = 0;
            // A couple of honest members so probes/ejections have
            // someone to act on.
            for p in 0..2u32 {
                let join = Packet::control(PacketType::Join, 8000 + p as u16, 7001, 0);
                s.handle_packet(&join, PeerId(p), now);
                report.packets_fed += 1;
            }
            let _ = s.submit(&[0x5A; 4096], now);
            let steps = 8 + (rng.gen::<u64>() % 25);
            for _ in 0..steps {
                now += rng.gen::<u64>() % 50_000;
                match rng.gen::<u64>() % 8 {
                    0 => s.on_tick(now),
                    1 => {
                        let _ = s.submit(&[0xA5; 512], now);
                    }
                    2 => {
                        while s.poll_output().is_some() {}
                        while s.poll_event().is_some() {}
                    }
                    3 => s.note_checksum_failure(now),
                    _ => {
                        let pkt = arbitrary_packet(&mut rng);
                        // Forged packets arrive from known and unknown
                        // peers alike.
                        let peer = PeerId(rng.gen::<u32>() % 4);
                        s.handle_packet(&pkt, peer, now);
                        report.packets_fed += 1;
                    }
                }
            }
            if rng.gen_bool(0.3) {
                s.close(now);
            }
            s.on_tick(now + 1_000_000);
            while s.poll_output().is_some() {}
            while s.poll_event().is_some() {}
            report.malformed_flagged += s.stats.malformed_packets;
        });
        report.episodes += 1;
    }
    report
}

/// Write the built-in seed set into `corpus_dir()` as `.hex` files.
/// Used once to produce the checked-in corpus; re-running is
/// idempotent.
pub fn write_corpus() -> std::io::Result<usize> {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir)?;
    let seeds = builtin_seeds();
    for (i, seed) in seeds.iter().enumerate() {
        let mut text = String::from("# hrmc-fuzz corpus seed (hex bytes)\n");
        for chunk in seed.chunks(16) {
            let line: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
            text.push_str(&line.join(" "));
            text.push('\n');
        }
        std::fs::write(dir.join(format!("seed_{i:02}.hex")), text)?;
    }
    Ok(seeds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_parses_and_round_trips() {
        assert_eq!(parse_hex("0a ff\n# note\n00"), Some(vec![0x0a, 0xff, 0x00]));
        assert_eq!(parse_hex("zz"), None);
    }

    #[test]
    fn builtin_seeds_all_decode() {
        for seed in builtin_seeds() {
            Packet::decode(&seed).expect("builtin corpus seed must be a valid packet");
        }
    }

    #[test]
    fn episodes_are_reproducible() {
        let a = fuzz_wire(7, 200);
        let b = fuzz_wire(7, 200);
        assert_eq!(a.decode_ok, b.decode_ok);
        assert_eq!(a.decode_err, b.decode_err);
        // Both accept and reject paths must actually be exercised.
        assert!(a.decode_ok > 0, "no input ever decoded");
        assert!(a.decode_err > 0, "no input was ever rejected");
    }
}
