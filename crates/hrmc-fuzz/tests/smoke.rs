//! Bounded-iteration fuzz smoke: the CI fuzz gate. Each target runs a
//! few thousand episodes from a fixed seed; any panic in a decode or
//! engine path fails the suite with a replayable episode number.

use hrmc_fuzz::{builtin_seeds, fuzz_receiver, fuzz_sender, fuzz_wire, load_corpus};

#[test]
fn corpus_is_checked_in_and_valid() {
    let corpus = load_corpus();
    assert!(
        corpus.len() >= builtin_seeds().len(),
        "checked-in corpus missing; run `hrmc-fuzz gen-corpus`"
    );
    for seed in &corpus {
        hrmc_wire::Packet::decode(seed).expect("corpus seed must decode");
    }
}

#[test]
fn wire_decode_survives_smoke_budget() {
    let r = fuzz_wire(0xF00D, 8_000);
    assert_eq!(r.episodes, 8_000);
    assert!(r.decode_ok > 0 && r.decode_err > 0);
}

#[test]
fn receiver_engine_survives_smoke_budget() {
    let r = fuzz_receiver(0xF00D, 400);
    assert_eq!(r.episodes, 400);
    assert!(r.packets_fed > 0);
    // The hostile generator leans on span/sequence edge values, so the
    // hardened paths must actually fire across the run.
    assert!(r.malformed_flagged > 0, "hardening counters never engaged");
}

#[test]
fn sender_engine_survives_smoke_budget() {
    let r = fuzz_sender(0xF00D, 400);
    assert_eq!(r.episodes, 400);
    assert!(r.packets_fed > 0);
    assert!(r.malformed_flagged > 0, "hardening counters never engaged");
}
