//! Deterministic fault replay. A post-mortem is only as good as its
//! reproduction: a run that crashed a receiver and rode out a partition
//! must be replayable bit-for-bit from its seed. The fixture below pins
//! a churn + partition scenario's JSONL event log and report; the second
//! test pins that the parallel sweep runner returns byte-identical
//! reports at every `--jobs` count, so a fault sweep's results do not
//! depend on how many workers happened to run it.

use hrmc_experiments::sweep;
use hrmc_sim::Simulation;
use std::sync::{Arc, Mutex};

/// FNV-1a over a byte stream (stable, dependency-free fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Tee(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for Tee {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The faulted fixture run: 3 receivers on a lossy 10 Mbps LAN; receiver
/// 2 crashes at t=250 ms, receiver 0 is partitioned off for
/// [150 ms, 900 ms). Ejection is silence-based (3 s) only, so the
/// 750 ms partition is ridden out but the corpse is ejected.
fn faulted_scenario() -> hrmc_app::Scenario {
    hrmc_app::Scenario::lan(3, 10_000_000, 256 * 1024, 400_000)
        .with_loss(0.01)
        .with_receiver_crash(2, 250_000)
        .with_partition(vec![0], 150_000, 900_000)
        .with_failure_domains(0, 3_000_000, 0)
        .with_seed(2)
}

fn run_logged() -> (hrmc_sim::SimReport, Vec<u8>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(faulted_scenario().params());
    sim.set_event_log(Box::new(Tee(log.clone())));
    let report = sim.run();
    let bytes = log.lock().unwrap().clone();
    (report, bytes)
}

/// The crash + partition run replays byte-for-byte: same report, same
/// JSONL event log, every time.
#[test]
fn churn_partition_run_replays_byte_identically() {
    let (a, log_a) = run_logged();
    let (b, log_b) = run_logged();
    assert!(a.completed, "the survivor must finish the transfer");
    assert_eq!(
        a.sender.members_ejected, 1,
        "the crashed receiver is ejected"
    );
    assert!(a.partition_drops > 0, "the partition must have bitten");
    assert!(a.churn_drops > 0, "the crash must have eaten packets");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed must serialize to a byte-identical SimReport"
    );
    assert_eq!(log_a, log_b, "same seed must log identical JSONL");
    assert_eq!(
        fnv1a(&log_a),
        FIXTURE_LOG_FNV,
        "faulted event log diverged from the pinned fixture — \
         fault injection is no longer deterministic (or the fault \
         model changed; recapture deliberately if so)"
    );
    assert_eq!(a.elapsed_us, FIXTURE_ELAPSED_US);
}

/// Fingerprints captured when the fault layer landed, recaptured once
/// when the JSONL schema header + `member` field landed
/// (event-schema 1) and once for the event-schema 2 header digit — the
/// only byte that changed; `elapsed_us` is pinned across both. Any
/// drift means a fault-injected run is no longer replayable from its
/// seed.
const FIXTURE_LOG_FNV: u64 = 0x28a6_467d_7072_7066;
const FIXTURE_ELAPSED_US: u64 = 6_891_606;

/// A faulted sweep returns the same bytes at every worker count.
#[test]
fn faulted_sweep_is_jobs_invariant() {
    let s = faulted_scenario();
    let sequential = sweep::run_seeds(&s, 4, 1);
    for jobs in [2, 4, 8] {
        let parallel = sweep::run_seeds(&s, 4, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "faulted sweep diverged at --jobs {jobs}"
            );
        }
    }
}
