//! Hostile-matrix regression fixtures. Two contracts beyond the unit
//! suite in `hrmc_experiments::hostile`:
//!
//! 1. A link-dynamics run replays byte-for-byte from its seed (same
//!    serialized report every time), and a scheduled sweep is invariant
//!    to the `--jobs` worker count — network weather must not leak
//!    wall-clock nondeterminism into results.
//! 2. A scenario whose schedule is *empty* serializes identically to
//!    the plain scenario it was built from: the dynamics layer is
//!    provably free when unused.

use hrmc_app::Scenario;
use hrmc_experiments::{hostile, sweep, ExpOptions};
use hrmc_sim::{LinkAction, LinkSchedule};

fn scheduled_scenario() -> Scenario {
    let mut links = LinkSchedule::default();
    links.collapse_recover(0, 200_000, 900_000, 10_000_000, 1_000_000, 100_000, 4);
    links.push(
        150_000,
        LinkAction::SetUpPath {
            extra_delay_us: 5_000,
            loss: 0.2,
        },
    );
    Scenario::lan(4, 10_000_000, 256 * 1024, 400_000)
        .with_loss(0.01)
        .with_links(links)
        .with_seed(2)
}

/// A link-scheduled sweep returns the same bytes at every worker count.
#[test]
fn scheduled_sweep_is_jobs_invariant() {
    let s = scheduled_scenario();
    let sequential = sweep::run_seeds(&s, 4, 1);
    for r in &sequential {
        assert!(r.link_events_applied > 0, "schedule never fired");
    }
    for jobs in [2, 4, 8] {
        let parallel = sweep::run_seeds(&s, 4, jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "link-scheduled sweep diverged at --jobs {jobs}"
            );
        }
    }
}

/// An empty schedule is byte-free: attaching `LinkSchedule::default()`
/// changes nothing in the serialized report.
#[test]
fn empty_schedule_is_byte_identical_to_none() {
    let plain = Scenario::lan(4, 10_000_000, 256 * 1024, 400_000)
        .with_loss(0.01)
        .with_seed(3);
    let noop = plain.clone().with_links(LinkSchedule::default());
    let a = plain.run();
    let b = noop.run();
    assert_eq!(a.link_events_applied, 0);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "an empty link schedule perturbed the simulation"
    );
}

/// The full matrix honors its invariants at a second seed and
/// population, not just the unit test's quick() configuration.
#[test]
fn matrix_invariants_hold_at_alternate_population() {
    let opts = ExpOptions {
        repeats: 1,
        scale_down: 25,
        out_dir: std::env::temp_dir().join("hrmc-hostile-matrix-test"),
        receivers: Some(3),
        ..ExpOptions::default()
    };
    let v = hostile::run(&opts);
    assert!(v["capacity-collapse"]["rate_halvings"].as_u64().unwrap() >= 1);
    assert!(v["mobile-churn"]["migration_drops"].as_u64().unwrap() > 0);
    assert_eq!(v["baseline"]["false_ejections"].as_u64().unwrap(), 0);
}
