//! Parallel sweep runner: fan independent simulation runs across OS
//! threads.
//!
//! Every figure harness is a sweep over [`Scenario`]s, and every run is
//! an isolated, deterministic function of its parameters (the RNG is
//! seeded per run, no shared state). That makes the sweep embarrassingly
//! parallel: workers claim scenarios from a shared index, run them, and
//! write each report into its input's slot, so the collected `Vec` is in
//! input order and byte-identical to a sequential sweep regardless of
//! the worker count or scheduling.

use hrmc_app::Scenario;
use hrmc_sim::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count to use when the user did not pick one: the machine's
/// available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `f` to every item on up to `jobs` worker threads and collect
/// the results **in input order**. `jobs <= 1` (or a single item) runs
/// inline with no threads spawned. A panicking `f` propagates, as it
/// would sequentially.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Run every scenario (in parallel) and collect the reports in input
/// order.
pub fn run_all(scenarios: &[Scenario], jobs: usize) -> Vec<SimReport> {
    parallel_map(scenarios, jobs, Scenario::run)
}

/// Run `repeats` seeded copies of `scenario` (seeds `1..=repeats`, the
/// same seeds the sequential [`Scenario::run_seeds`] uses) across `jobs`
/// workers; reports come back ordered by seed.
pub fn run_seeds(scenario: &Scenario, repeats: u64, jobs: usize) -> Vec<SimReport> {
    let seeded: Vec<Scenario> = (1..=repeats)
        .map(|seed| scenario.clone().with_seed(seed))
        .collect();
    run_all(&seeded, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let got = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(got, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_matches_sequential_byte_for_byte() {
        let s = hrmc_app::Scenario::lan(2, 10_000_000, 128 * 1024, 200_000).with_loss(0.01);
        let sequential = s.run_seeds(3);
        let parallel = run_seeds(&s, 3, 4);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "parallel sweep must reproduce the sequential reports exactly"
            );
        }
    }
}
