//! Figure 10: "Throughput of H-RMC on a 10 Mbps network (experimental)"
//! — four panels: (a) memory-to-memory 10 MB, (b) memory-to-memory
//! 40 MB, (c) disk-to-disk 10 MB, (d) disk-to-disk 40 MB; each plots
//! throughput against kernel buffer size for 1, 2, and 3 receivers.
//!
//! The testbed itself is substituted by the simulated LAN (the paper
//! showed its simulator matches the testbed in the local case), with the
//! paper's host-processing constants.

use hrmc_app::{mean, Scenario};
use serde_json::json;

use crate::{buf_label, ExpOptions, Table, BUFFERS, MBPS_10, MB_10, MB_40};

/// Receiver counts of the experimental study.
pub const RECEIVER_COUNTS: [usize; 3] = [1, 2, 3];

/// Build the scenario for one cell.
pub fn scenario(
    receivers: usize,
    transfer: u64,
    disk: bool,
    buffer: usize,
    bandwidth: u64,
) -> Scenario {
    let mut s = Scenario::lan(receivers, bandwidth, buffer, transfer);
    if disk {
        s = s.disk_to_disk();
    }
    s
}

/// Average throughput (Mbps) for one cell.
fn cell(receivers: usize, transfer: u64, disk: bool, buffer: usize, opts: &ExpOptions) -> f64 {
    let s = scenario(receivers, opts.transfer(transfer), disk, buffer, MBPS_10);
    let runs = opts.run_seeds(&s);
    debug_assert!(runs.iter().all(|r| r.completed && r.all_intact()));
    mean(&runs.iter().map(|r| r.throughput_mbps).collect::<Vec<_>>())
}

/// One panel: a table of throughput vs buffer for 1–3 receivers.
pub fn panel(
    name: &str,
    transfer: u64,
    disk: bool,
    opts: &ExpOptions,
) -> (Table, serde_json::Value) {
    let mut table = Table::new(name, &["buffer", "1 rcvr", "2 rcvrs", "3 rcvrs"]);
    let mut series = serde_json::Map::new();
    for &buffer in &BUFFERS {
        let mut cells = vec![buf_label(buffer)];
        for &n in &RECEIVER_COUNTS {
            let v = cell(n, transfer, disk, buffer, opts);
            cells.push(format!("{v:.2}"));
            series
                .entry(format!("{n}_receivers"))
                .or_insert_with(|| json!([]))
                .as_array_mut()
                .unwrap()
                .push(json!({"buffer": buffer, "mbps": v}));
        }
        table.row(cells);
    }
    (table, serde_json::Value::Object(series))
}

/// Run all four panels.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let panels = [
        (
            "a_mem_10MB",
            "Figure 10(a): memory-to-memory, 10 MB (Mbps)",
            MB_10,
            false,
        ),
        (
            "b_mem_40MB",
            "Figure 10(b): memory-to-memory, 40 MB (Mbps)",
            MB_40,
            false,
        ),
        (
            "c_disk_10MB",
            "Figure 10(c): disk-to-disk, 10 MB (Mbps)",
            MB_10,
            true,
        ),
        (
            "d_disk_40MB",
            "Figure 10(d): disk-to-disk, 40 MB (Mbps)",
            MB_40,
            true,
        ),
    ];
    let mut out = serde_json::Map::new();
    for (key, title, transfer, disk) in panels {
        let (table, series) = panel(title, transfer, disk, opts);
        table.print();
        out.insert(key.to_string(), series);
    }
    let value = serde_json::Value::Object(out);
    opts.save_json("fig10", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 20,
            out_dir: std::env::temp_dir().join("hrmc-fig10-test"),
            receivers: None,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn throughput_grows_then_plateaus_with_buffer() {
        let opts = quick();
        let small = cell(1, MB_10, false, 64 * 1024, &opts);
        let large = cell(1, MB_10, false, 1024 * 1024, &opts);
        assert!(small > 0.0 && large > 0.0);
        assert!(
            large >= small,
            "throughput must not shrink with buffer: {small:.2} -> {large:.2}"
        );
        // On a 10 Mbps wire nothing exceeds 10 Mbps.
        assert!(large < 10.0, "throughput {large:.2} exceeds the wire");
    }

    #[test]
    fn receiver_count_is_mostly_neutral() {
        // Paper: "the number of receivers does not affect the overall
        // throughput as long as there is sufficient kernel buffer space."
        let opts = quick();
        let one = cell(1, MB_10, false, 1024 * 1024, &opts);
        let three = cell(3, MB_10, false, 1024 * 1024, &opts);
        assert!(
            (one - three).abs() / one < 0.35,
            "receiver count changed throughput too much: {one:.2} vs {three:.2}"
        );
    }
}
