//! Figure 15: "H-RMC performance on a 10 Mbps network (simulated)" —
//! (a) throughput with 10 receivers across Tests 1–5 (Figure 14(b)),
//! (b) rate-reduce requests with 10 receivers, (c) throughput with
//! 100 receivers.
//!
//! Expected shape (paper): Test 1 (all LAN) fastest, then Test 2 (MAN),
//! then Test 3 (WAN) slowest; Tests 4 and 5 track the wide-area group
//! ("H-RMC is designed to adapt to the least capable receiver in the
//! multicast group"); rate requests grow with loss and shrink with
//! buffer; 100 receivers costs only a small amount of throughput.

use hrmc_app::{mean, Scenario};
use hrmc_sim::topology::test_case;
use serde_json::json;

use crate::{buf_label, ExpOptions, Table, BUFFERS, MBPS_10, MB_10};

/// The five test cases.
pub const TESTS: [usize; 5] = [1, 2, 3, 4, 5];

/// (throughput Mbps, rate requests) for one cell.
pub fn cell(
    test: usize,
    receivers: usize,
    buffer: usize,
    bandwidth: u64,
    opts: &ExpOptions,
) -> (f64, f64) {
    let s = Scenario::groups(
        test_case(test, receivers),
        bandwidth,
        buffer,
        opts.transfer(MB_10),
    );
    let runs = opts.run_seeds(&s);
    let thr: Vec<f64> = runs.iter().map(|r| r.throughput_mbps).collect();
    let rr: Vec<f64> = runs
        .iter()
        .map(|r| r.sender.rate_requests_received as f64)
        .collect();
    (mean(&thr), mean(&rr))
}

/// A throughput-and-rate-requests pair of tables over Tests 1–5.
pub fn panels(
    receivers: usize,
    bandwidth: u64,
    label: &str,
    opts: &ExpOptions,
) -> (Table, Table, serde_json::Value) {
    let headers = ["buffer", "Test 1", "Test 2", "Test 3", "Test 4", "Test 5"];
    let mut thr_table = Table::new(&format!("throughput, {label} (Mbps)"), &headers);
    let mut rr_table = Table::new(&format!("rate-reduce requests, {label}"), &headers);
    let mut series = serde_json::Map::new();
    for &buffer in &BUFFERS {
        let mut thr_cells = vec![buf_label(buffer)];
        let mut rr_cells = vec![buf_label(buffer)];
        for &test in &TESTS {
            let (thr, rr) = cell(test, receivers, buffer, bandwidth, opts);
            thr_cells.push(format!("{thr:.2}"));
            rr_cells.push(format!("{rr:.1}"));
            series
                .entry(format!("test{test}"))
                .or_insert_with(|| json!([]))
                .as_array_mut()
                .unwrap()
                .push(json!({"buffer": buffer, "mbps": thr, "rate_requests": rr}));
        }
        thr_table.row(thr_cells);
        rr_table.row(rr_cells);
    }
    (thr_table, rr_table, serde_json::Value::Object(series))
}

/// Run all three panels.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    let (thr, rr, series) = panels(
        opts.receivers.unwrap_or(10),
        MBPS_10,
        "Figure 15(a/b): 10 receivers, 10 Mbps",
        opts,
    );
    thr.print();
    rr.print();
    out.insert("ab_10_receivers".into(), series);

    // Panel (c): 100 receivers. The transfer is additionally scaled in
    // quick mode through `opts`.
    let (thr100, _, series100) = panels(
        opts.receivers.map(|r| r * 10).unwrap_or(100),
        MBPS_10,
        "Figure 15(c): 100 receivers, 10 Mbps",
        opts,
    );
    thr100.print();
    out.insert("c_100_receivers".into(), series100);

    let value = serde_json::Value::Object(out);
    opts.save_json("fig15", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 50,
            out_dir: std::env::temp_dir().join("hrmc-fig15-test"),
            receivers: Some(5),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn test1_beats_test3_and_test5_tracks_wan() {
        let opts = quick();
        let buffer = 512 * 1024;
        let (t1, _) = cell(1, 5, buffer, MBPS_10, &opts);
        let (t3, _) = cell(3, 5, buffer, MBPS_10, &opts);
        let (t5, _) = cell(5, 5, buffer, MBPS_10, &opts);
        assert!(
            t1 > t3,
            "LAN test must beat WAN test: t1={t1:.2} t3={t3:.2}"
        );
        // Test 5 (80% WAN) lands near Test 3, far from Test 1.
        assert!(
            (t5 - t3).abs() < (t1 - t3).abs(),
            "t5={t5:.2} should track t3={t3:.2}, not t1={t1:.2}"
        );
    }
}
