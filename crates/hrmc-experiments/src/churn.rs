//! Fault-matrix sweep: the robustness counterpart of the figure
//! harnesses. One fixed LAN transfer is re-run under a matrix of fault
//! regimes — injected corruption, duplication + reordering, a healing
//! partition, receiver crash, sender pause/resume — and the table
//! reports what each regime cost and what the failure-domain machinery
//! did about it. The paper's evaluation never kills a host mid-run;
//! this harness exists so the reproduction's recovery path is exercised
//! as routinely as its throughput path.

use hrmc_app::{mean, Scenario};
use hrmc_sim::{ChurnAction, ChurnEvent, FaultModel, FaultPlan};
use serde_json::json;

use crate::{ExpOptions, Table, MBPS_10, MB_10};

/// Default receiver population (enough that one crash leaves a quorum).
pub const RECEIVERS: usize = 6;

/// The fault matrix: `(regime label, scenario)` pairs over one fixed
/// 10 Mbps LAN transfer with 1% ambient loss.
pub fn regimes(opts: &ExpOptions) -> Vec<(&'static str, Scenario)> {
    let receivers = opts.receivers.unwrap_or(RECEIVERS);
    let transfer = opts.transfer(MB_10);
    let base = || Scenario::lan(receivers, MBPS_10, 256 * 1024, transfer).with_loss(0.01);
    vec![
        ("baseline", base()),
        (
            "corrupt-0.5%",
            base().with_faults(FaultPlan {
                link: FaultModel {
                    corrupt: 0.005,
                    ..FaultModel::NONE
                },
                ..FaultPlan::default()
            }),
        ),
        (
            "dup-1%+reorder-2%",
            base().with_faults(FaultPlan {
                link: FaultModel {
                    duplicate: 0.01,
                    reorder: 0.02,
                    reorder_max_us: 20_000,
                    ..FaultModel::NONE
                },
                ..FaultPlan::default()
            }),
        ),
        (
            "partition-1.3s",
            base().with_partition(vec![0], 200_000, 1_500_000),
        ),
        (
            "crash-1rx",
            base().with_receiver_crash(receivers - 1, 300_000),
        ),
        (
            "pause-0.5s",
            base().with_faults(FaultPlan {
                churn: vec![
                    ChurnEvent {
                        at_us: 250_000,
                        action: ChurnAction::PauseSender,
                    },
                    ChurnEvent {
                        at_us: 750_000,
                        action: ChurnAction::ResumeSender,
                    },
                ],
                ..FaultPlan::default()
            }),
        ),
    ]
}

/// Run the matrix and print/save the results.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let headers = [
        "regime",
        "Mbps",
        "retrans",
        "ejected",
        "failed",
        "corrupt",
        "partition",
        "churn",
    ];
    let mut table = Table::new("fault matrix, 10 Mbps LAN, 1% loss", &headers);
    let mut series = serde_json::Map::new();
    for (label, scenario) in regimes(opts) {
        let runs = opts.run_seeds(&scenario);
        let thr: Vec<f64> = runs.iter().map(|r| r.throughput_mbps).collect();
        let retrans: Vec<f64> = runs
            .iter()
            .map(|r| r.sender.retransmissions as f64)
            .collect();
        let sum = |f: fn(&hrmc_sim::SimReport) -> u64| -> u64 { runs.iter().map(f).sum() };
        let ejected = sum(|r| r.sender.members_ejected);
        let failed = runs
            .iter()
            .map(|r| r.failed_receivers() as u64)
            .sum::<u64>();
        let (corrupt, partition, churn) = (
            sum(|r| r.corruption_drops),
            sum(|r| r.partition_drops),
            sum(|r| r.churn_drops),
        );
        // Every regime must come out the other side: either the run
        // completed, or every incompletion is accounted for by an
        // ejection or a declared session failure.
        for r in &runs {
            assert!(
                r.completed || ejected > 0 || failed > 0,
                "{label}: run neither completed nor resolved its failures"
            );
        }
        table.row(vec![
            label.to_string(),
            format!("{:.2}", mean(&thr)),
            format!("{:.1}", mean(&retrans)),
            ejected.to_string(),
            failed.to_string(),
            corrupt.to_string(),
            partition.to_string(),
            churn.to_string(),
        ]);
        series.insert(
            label.to_string(),
            json!({
                "mbps": mean(&thr),
                "retransmissions": mean(&retrans),
                "members_ejected": ejected,
                "failed_receivers": failed,
                "corruption_drops": corrupt,
                "partition_drops": partition,
                "churn_drops": churn,
            }),
        );
    }
    table.print();
    let value = serde_json::Value::Object(series);
    opts.save_json("churn", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 50,
            out_dir: std::env::temp_dir().join("hrmc-churn-test"),
            receivers: Some(4),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn fault_matrix_survives_every_regime() {
        let opts = quick();
        let v = run(&opts);
        // Each regime's detectors actually fired.
        assert!(v["corrupt-0.5%"]["corruption_drops"].as_u64().unwrap() > 0);
        assert!(v["partition-1.3s"]["partition_drops"].as_u64().unwrap() > 0);
        assert_eq!(v["crash-1rx"]["members_ejected"].as_u64().unwrap(), 1);
        assert_eq!(v["crash-1rx"]["failed_receivers"].as_u64().unwrap(), 0);
        assert!(v["pause-0.5s"]["churn_drops"].as_u64().is_some());
        // The baseline run is unharmed by the harness itself.
        assert!(v["baseline"]["mbps"].as_f64().unwrap() > 0.0);
        assert_eq!(v["baseline"]["members_ejected"].as_u64().unwrap(), 0);
    }
}
