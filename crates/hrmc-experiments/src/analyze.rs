//! Self-analyzing runs: any experiment can capture its own JSONL event
//! stream in memory and hand it straight to the `hrmc-trace` analyzer,
//! so a sweep point that misbehaves can be diagnosed (loss attribution,
//! suppression efficiency, flow-control timeline, PROBE stalls) without
//! re-running it with a trace file and a separate tool.

use std::sync::{Arc, Mutex};

use hrmc_app::Scenario;
use hrmc_sim::{SimParams, SimReport, Simulation};
use hrmc_trace::Analysis;

/// `Write` handle into a shared in-memory buffer (the simulator takes
/// the writer by value; the caller keeps the other handle).
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one simulation with its event stream captured in memory, and
/// return both the ordinary report and the full causal-lifecycle
/// analysis of the run.
pub fn run_analyzed(params: SimParams) -> (SimReport, Analysis) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(params);
    sim.set_event_log(Box::new(SharedBuf(buf.clone())));
    let report = sim.run();
    let log = String::from_utf8(std::mem::take(&mut *buf.lock().unwrap()))
        .expect("event log is UTF-8 JSONL");
    let analysis = hrmc_trace::analyze_str(&log).expect("own event log must parse");
    (report, analysis)
}

/// [`run_analyzed`] for a [`Scenario`] builder.
pub fn run_scenario_analyzed(scenario: &Scenario) -> (SimReport, Analysis) {
    run_analyzed(scenario.params())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_run_self_analyzes() {
        let scenario = Scenario::lan(2, 10_000_000, 256 * 1024, 200_000)
            .with_loss(0.01)
            .with_seed(7);
        let (report, analysis) = run_scenario_analyzed(&scenario);
        assert!(report.completed);
        // The analysis must agree with the report on first principles.
        assert_eq!(analysis.transfer.data_bytes, report.transfer_bytes);
        assert_eq!(
            analysis.transfer.retransmissions,
            report.sender.retransmissions
        );
        assert_eq!(analysis.members.len(), 2);
        assert!(
            analysis.lifecycle.complete,
            "a completed run must account for every sequence"
        );
    }
}
