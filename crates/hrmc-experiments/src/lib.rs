//! # hrmc-experiments
//!
//! Regeneration harnesses for every table and figure in the paper's
//! evaluation (§5). Each `fig*` module sweeps the paper's parameter grid
//! through the simulator and prints the same rows/series the paper
//! plots; each has a matching binary (`cargo run --release -p
//! hrmc-experiments --bin fig10`).
//!
//! Absolute numbers are not expected to match the 1999 testbed — the
//! substrate here is the paper's own simulator model, re-implemented —
//! but the *shapes* are: who wins, by roughly what factor, and where the
//! knees fall. `EXPERIMENTS.md` records paper-vs-measured for each id.
//!
//! Common knobs (command line or environment):
//!
//! * `--quick` / `HRMC_EXP_QUICK=1` — divide transfer sizes by 10 and
//!   run 1 repeat; for smoke-testing the harnesses.
//! * `--repeats N` / `HRMC_EXP_REPEATS` — runs per configuration
//!   (the paper averages 5).
//! * `--out DIR` / `HRMC_EXP_OUT` — where JSON series are written
//!   (default `results/`).
//! * `--jobs N` / `HRMC_EXP_JOBS` — worker threads for the parallel
//!   sweep runner (default: available parallelism; 1 = sequential).
//!   Results are ordered and byte-identical at any worker count.

pub mod analyze;
pub mod churn;
pub mod fig03;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod hostile;
pub mod options;
pub mod sweep;
pub mod table;

pub use options::ExpOptions;
pub use table::Table;

/// The paper's kernel-buffer sweep: 64 K – 1024 K.
pub const BUFFERS: [usize; 5] = [64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];

/// Extended sweep for Figure 13 ("an increase in buffer size beyond
/// 1024K causes some NAKs to be generated").
pub const BUFFERS_EXTENDED: [usize; 7] = [
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
    2048 * 1024,
    4096 * 1024,
];

/// 10 Mbps.
pub const MBPS_10: u64 = 10_000_000;

/// 100 Mbps.
pub const MBPS_100: u64 = 100_000_000;

/// 10 MB transfer (the paper's small file).
pub const MB_10: u64 = 10_000_000;

/// 40 MB transfer (the paper's large file).
pub const MB_40: u64 = 40_000_000;

/// Label for a buffer size, paper-style ("64K", "1024K").
pub fn buf_label(bytes: usize) -> String {
    format!("{}K", bytes / 1024)
}
