//! Figure 12: "Throughput of H-RMC on a 100 Mbps network (experimental)"
//! — memory-to-memory throughput for (a) 10 MB and (b) 40 MB transfers,
//! 1–3 receivers, against kernel buffer size.
//!
//! Two paper findings are the targets here: "throughput again increases
//! with increase in kernel buffer" (the small-buffer regime behaves
//! "like a stop-and-wait protocol"), and "the throughput is higher for
//! larger transfers" (slow start amortizes better over 40 MB).

use hrmc_app::{mean, Scenario};
use serde_json::json;

use crate::fig10::RECEIVER_COUNTS;
use crate::{buf_label, ExpOptions, Table, BUFFERS, MBPS_100, MB_10, MB_40};

fn cell(receivers: usize, transfer: u64, buffer: usize, opts: &ExpOptions) -> f64 {
    let s = Scenario::lan(receivers, MBPS_100, buffer, opts.transfer(transfer));
    let runs = opts.run_seeds(&s);
    mean(&runs.iter().map(|r| r.throughput_mbps).collect::<Vec<_>>())
}

/// Run both panels.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    for (key, title, transfer) in [
        (
            "a_mem_10MB",
            "Figure 12(a): memory-to-memory, 10 MB, 100 Mbps (Mbps)",
            MB_10,
        ),
        (
            "b_mem_40MB",
            "Figure 12(b): memory-to-memory, 40 MB, 100 Mbps (Mbps)",
            MB_40,
        ),
    ] {
        let mut table = Table::new(title, &["buffer", "1 rcvr", "2 rcvrs", "3 rcvrs"]);
        let mut series = serde_json::Map::new();
        for &buffer in &BUFFERS {
            let mut cells = vec![buf_label(buffer)];
            for &n in &RECEIVER_COUNTS {
                let v = cell(n, transfer, buffer, opts);
                cells.push(format!("{v:.1}"));
                series
                    .entry(format!("{n}_receivers"))
                    .or_insert_with(|| json!([]))
                    .as_array_mut()
                    .unwrap()
                    .push(json!({"buffer": buffer, "mbps": v}));
            }
            table.row(cells);
        }
        table.print();
        out.insert(key.to_string(), serde_json::Value::Object(series));
    }
    let value = serde_json::Value::Object(out);
    opts.save_json("fig12", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 20,
            out_dir: std::env::temp_dir().join("hrmc-fig12-test"),
            receivers: None,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn throughput_increases_with_buffer_at_100mbps() {
        let opts = quick();
        let small = cell(1, MB_40, 64 * 1024, &opts);
        let large = cell(1, MB_40, 1024 * 1024, &opts);
        assert!(
            large > small * 1.5,
            "100 Mbps throughput must grow strongly with buffer: {small:.1} -> {large:.1}"
        );
        assert!(large < 100.0);
    }
}
