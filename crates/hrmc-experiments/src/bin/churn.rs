//! Runs the fault-matrix robustness sweep. See the module docs of
//! `hrmc_experiments::churn` for the regimes and what each row reports.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "churn: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::churn::run(&opts);
}
