//! Regenerates every figure in sequence (the EXPERIMENTS.md pipeline).

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "all figures: repeats={} scale_down={} jobs={}",
        opts.repeats, opts.scale_down, opts.jobs
    );
    for (name, run) in [
        (
            "fig03",
            hrmc_experiments::fig03::run as fn(&hrmc_experiments::ExpOptions) -> serde_json::Value,
        ),
        ("fig10", hrmc_experiments::fig10::run),
        ("fig11", hrmc_experiments::fig11::run),
        ("fig12", hrmc_experiments::fig12::run),
        ("fig13", hrmc_experiments::fig13::run),
        ("fig15", hrmc_experiments::fig15::run),
        ("fig16", hrmc_experiments::fig16::run),
        ("churn", hrmc_experiments::churn::run),
        ("hostile", hrmc_experiments::hostile::run),
    ] {
        let t = std::time::Instant::now();
        eprintln!("--- {name} ---");
        run(&opts);
        eprintln!("--- {name} done in {:.1}s ---", t.elapsed().as_secs_f64());
    }
}
