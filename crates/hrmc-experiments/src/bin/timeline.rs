//! Timeline view of one transfer: second-by-second sender activity
//! (data, feedback, probes, drops, advertised rate) for a chosen
//! scenario. A debugging/analysis companion to the figure harnesses.
//!
//! ```sh
//! cargo run --release -p hrmc-experiments --bin timeline -- \
//!     [--receivers N] [--buffer-kb N] [--loss PCT] [--bandwidth-mbps N]
//! ```

use hrmc_app::Scenario;
use hrmc_sim::Simulation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut receivers = 3usize;
    let mut buffer_kb = 256usize;
    let mut loss_pct = 0.5f64;
    let mut mbps = 10u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--receivers" if i + 1 < args.len() => {
                i += 1;
                receivers = args[i].parse().unwrap_or(receivers);
            }
            "--buffer-kb" if i + 1 < args.len() => {
                i += 1;
                buffer_kb = args[i].parse().unwrap_or(buffer_kb);
            }
            "--loss" if i + 1 < args.len() => {
                i += 1;
                loss_pct = args[i].parse().unwrap_or(loss_pct);
            }
            "--bandwidth-mbps" if i + 1 < args.len() => {
                i += 1;
                mbps = args[i].parse().unwrap_or(mbps);
            }
            _ => {}
        }
        i += 1;
    }
    let scenario = Scenario::lan(receivers, mbps * 1_000_000, buffer_kb * 1024, 5_000_000)
        .with_loss(loss_pct / 100.0);
    println!(
        "timeline: {receivers} receivers, {buffer_kb}K buffers, {loss_pct}% loss, {mbps} Mbps, 5 MB\n"
    );
    let mut params = scenario.params();
    params.trace_bucket_us = Some(1_000_000);
    let report = Simulation::new(params).run();
    if let Some(trace) = &report.trace {
        print!("{}", trace.render());
    }
    println!(
        "\ncompleted={} throughput={:.2} Mbps naks={} rate_requests={} probes={} retrans={}",
        report.completed,
        report.throughput_mbps,
        report.naks_received,
        report.rate_requests_received,
        report.probes_sent,
        report.retransmissions,
    );
}
