//! Timeline view of one transfer: second-by-second sender activity
//! (data, feedback, probes, drops, advertised rate) for a chosen
//! scenario, plus delivery/recovery latency percentiles from the
//! observer pipeline. With `--events <path>`, every protocol state
//! transition from every host is streamed to the file as JSON lines
//! (simulation timestamps) for offline analysis (`hrmc analyze <path>`).
//! With `--analyze`, the run feeds its own event stream through the
//! `hrmc-trace` causal-lifecycle analyzer and prints the diagnosis.
//! With `--timeseries <path>`, the run's sim-time telemetry grid (one
//! JSON object per sample: throughput, NAK rate, window occupancy,
//! recovery backlog, ...) is written alongside the printed results;
//! `--sample-ms N` sets the grid width (default 100 sim-ms).
//!
//! ```sh
//! cargo run --release -p hrmc-experiments --bin timeline -- \
//!     [--receivers N] [--buffer-kb N] [--loss PCT] [--bandwidth-mbps N] \
//!     [--events trace.jsonl] [--analyze] \
//!     [--timeseries samples.jsonl] [--sample-ms N]
//! ```

use std::sync::{Arc, Mutex};

use hrmc_app::Scenario;
use hrmc_sim::Simulation;

/// `Write` handle into a shared in-memory buffer, so the run can both
/// keep its event stream for `--analyze` and write it to `--events`.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut receivers = 3usize;
    let mut buffer_kb = 256usize;
    let mut loss_pct = 0.5f64;
    let mut mbps = 10u64;
    let mut events: Option<String> = None;
    let mut analyze = false;
    let mut timeseries: Option<String> = None;
    let mut sample_ms = 100u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--receivers" if i + 1 < args.len() => {
                i += 1;
                receivers = args[i].parse().unwrap_or(receivers);
            }
            "--buffer-kb" if i + 1 < args.len() => {
                i += 1;
                buffer_kb = args[i].parse().unwrap_or(buffer_kb);
            }
            "--loss" if i + 1 < args.len() => {
                i += 1;
                loss_pct = args[i].parse().unwrap_or(loss_pct);
            }
            "--bandwidth-mbps" if i + 1 < args.len() => {
                i += 1;
                mbps = args[i].parse().unwrap_or(mbps);
            }
            "--events" if i + 1 < args.len() => {
                i += 1;
                events = Some(args[i].clone());
            }
            "--analyze" => {
                analyze = true;
            }
            "--timeseries" if i + 1 < args.len() => {
                i += 1;
                timeseries = Some(args[i].clone());
            }
            "--sample-ms" if i + 1 < args.len() => {
                i += 1;
                sample_ms = args[i].parse().unwrap_or(sample_ms).max(1);
            }
            _ => {}
        }
        i += 1;
    }
    let scenario = Scenario::lan(receivers, mbps * 1_000_000, buffer_kb * 1024, 5_000_000)
        .with_loss(loss_pct / 100.0);
    println!(
        "timeline: {receivers} receivers, {buffer_kb}K buffers, {loss_pct}% loss, {mbps} Mbps, 5 MB\n"
    );
    let mut params = scenario.params();
    params.trace_bucket_us = Some(1_000_000);
    params.observe = true;
    if timeseries.is_some() {
        params.sample_interval_us = Some(sample_ms * 1_000);
    }
    let mut sim = Simulation::new(params);
    // With --analyze the stream is captured in memory (and copied to
    // --events afterwards); otherwise it goes straight to the file.
    let captured = if analyze {
        let buf = Arc::new(Mutex::new(Vec::new()));
        sim.set_event_log(Box::new(SharedBuf(buf.clone())));
        Some(buf)
    } else {
        if let Some(path) = &events {
            match std::fs::File::create(path) {
                Ok(f) => sim.set_event_log(Box::new(std::io::BufWriter::new(f))),
                Err(e) => eprintln!("cannot open {path}: {e}"),
            }
        }
        None
    };
    let report = sim.run();
    if let Some(trace) = &report.trace {
        print!("{}", trace.render());
    }
    println!(
        "\ncompleted={} throughput={:.2} Mbps naks={} rate_requests={} probes={} retrans={}",
        report.completed,
        report.throughput_mbps,
        report.sender.naks_received,
        report.sender.rate_requests_received,
        report.sender.probes_sent,
        report.sender.retransmissions,
    );
    if let Some(lat) = &report.latency {
        println!(
            "delivery latency (µs): n={} p50={} p90={} p99={}",
            lat.delivery.count, lat.delivery.p50, lat.delivery.p90, lat.delivery.p99,
        );
        println!(
            "recovery latency (µs): n={} p50={} p90={} p99={}",
            lat.recovery.count, lat.recovery.p50, lat.recovery.p90, lat.recovery.p99,
        );
    }
    if let Some(buf) = captured {
        let log = String::from_utf8(std::mem::take(&mut *buf.lock().unwrap()))
            .expect("event log is UTF-8 JSONL");
        if let Some(path) = &events {
            if let Err(e) = std::fs::write(path, &log) {
                eprintln!("cannot write {path}: {e}");
            }
        }
        match hrmc_trace::analyze_str(&log) {
            Ok(a) => println!("\n{}", a.render_table()),
            Err(e) => eprintln!("self-analysis failed: {e}"),
        }
    }
    if let Some(path) = &events {
        println!("event log: {path} (diagnose with: hrmc analyze {path})");
    }
    if let Some(path) = &timeseries {
        let samples = report.timeseries.as_deref().unwrap_or(&[]);
        let mut out = String::new();
        for s in samples {
            out.push_str(&serde_json::to_string(s).expect("sample serializes"));
            out.push('\n');
        }
        match std::fs::write(path, out) {
            Ok(()) => println!(
                "timeseries: {path} ({} samples, {} sim-ms grid)",
                samples.len(),
                sample_ms
            ),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}
