//! Regenerates the paper's Figure 13 series. See the module docs of
//! `hrmc_experiments::fig13` for the setup and expected shape.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "fig13: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::fig13::run(&opts);
}
