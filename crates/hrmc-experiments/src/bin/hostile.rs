//! Runs the hostile-network scenario matrix. See the module docs of
//! `hrmc_experiments::hostile` for the regimes and the
//! graceful-degradation invariants each one is held to.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "hostile: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::hostile::run(&opts);
}
