//! Regenerates the paper's Figure 11 series. See the module docs of
//! `hrmc_experiments::fig11` for the setup and expected shape.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "fig11: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::fig11::run(&opts);
}
