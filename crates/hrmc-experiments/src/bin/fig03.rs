//! Regenerates the paper's Figure 03 series. See the module docs of
//! `hrmc_experiments::fig03` for the setup and expected shape.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "fig03: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::fig03::run(&opts);
}
