//! Regenerates the paper's Figure 12 series. See the module docs of
//! `hrmc_experiments::fig12` for the setup and expected shape.

fn main() {
    let opts = hrmc_experiments::ExpOptions::from_env();
    eprintln!(
        "fig12: repeats={} scale_down={}",
        opts.repeats, opts.scale_down
    );
    hrmc_experiments::fig12::run(&opts);
}
