//! Extension experiment: sender load vs. receiver population, with the
//! paper's centralized recovery against the local-recovery extension
//! (paper future-work item 3: "use of local recovery to improve the
//! scalability of the protocol").
//!
//! For each population, a lossy LAN transfer runs twice; the series of
//! interest is the *sender's* repair work (retransmissions) and how much
//! of it the peer group absorbs.
//!
//! ```sh
//! cargo run --release -p hrmc-experiments --bin scalability
//! ```

use hrmc_app::{mean, Scenario};
use hrmc_experiments::{ExpOptions, Table};
use serde_json::json;

fn main() {
    let opts = ExpOptions::from_env();
    let transfer = opts.transfer(4_000_000);
    let loss = 0.01;
    let mut table = Table::new(
        &format!(
            "Scalability: sender retransmissions, centralized vs local recovery \
             ({} MB, 10 Mbps, {:.1}% loss)",
            transfer / 1_000_000,
            loss * 100.0
        ),
        &[
            "receivers",
            "central",
            "local",
            "peer repairs",
            "cancelled",
            "thr c",
            "thr l",
        ],
    );
    let mut series = serde_json::Map::new();
    for receivers in [2usize, 5, 10, 20, 40] {
        let base = Scenario::lan(receivers, 10_000_000, 256 * 1024, transfer).with_loss(loss);
        let central = opts.run_seeds(&base);
        let local = opts.run_seeds(&base.clone().with_local_recovery());
        for r in central.iter().chain(local.iter()) {
            assert!(
                r.completed && r.all_intact(),
                "unreliable run at n={receivers}"
            );
        }
        let c_retrans = mean(
            &central
                .iter()
                .map(|r| r.sender.retransmissions as f64)
                .collect::<Vec<_>>(),
        );
        let l_retrans = mean(
            &local
                .iter()
                .map(|r| r.sender.retransmissions as f64)
                .collect::<Vec<_>>(),
        );
        let repairs = mean(
            &local
                .iter()
                .map(|r| {
                    r.receivers
                        .iter()
                        .map(|x| x.stats.repairs_sent)
                        .sum::<u64>() as f64
                })
                .collect::<Vec<_>>(),
        );
        let cancelled = mean(
            &local
                .iter()
                .map(|r| r.sender.retransmissions_cancelled as f64)
                .collect::<Vec<_>>(),
        );
        let thr_c = mean(
            &central
                .iter()
                .map(|r| r.throughput_mbps)
                .collect::<Vec<_>>(),
        );
        let thr_l = mean(&local.iter().map(|r| r.throughput_mbps).collect::<Vec<_>>());
        table.row(vec![
            receivers.to_string(),
            format!("{c_retrans:.0}"),
            format!("{l_retrans:.0}"),
            format!("{repairs:.0}"),
            format!("{cancelled:.0}"),
            format!("{thr_c:.2}"),
            format!("{thr_l:.2}"),
        ]);
        series.insert(
            receivers.to_string(),
            json!({
                "central_retransmissions": c_retrans,
                "local_retransmissions": l_retrans,
                "peer_repairs": repairs,
                "cancelled": cancelled,
            }),
        );
    }
    table.print();
    println!(
        "Peer repairs absorb retransmission work that would otherwise land on\n\
         the sender; the effect grows with the population, which is exactly\n\
         the scalability argument of the paper's future-work item (3)."
    );
    opts.save_json("scalability", &serde_json::Value::Object(series));
}
