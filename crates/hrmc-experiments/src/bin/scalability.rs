//! Extension experiment: sender load vs. receiver population, with the
//! paper's centralized recovery against the local-recovery extension
//! (paper future-work item 3: "use of local recovery to improve the
//! scalability of the protocol").
//!
//! For each population, a lossy LAN transfer runs twice; the series of
//! interest is the *sender's* repair work (retransmissions) and how much
//! of it the peer group absorbs.
//!
//! A second sweep measures raw fan-out: lossless transfers at 1k / 10k /
//! 100k receivers, reporting simulator events per delivered byte and
//! sender work per receiver — the O(log n) membership index and the
//! deadline-heap scheduler are what keep both columns flat as the
//! population grows three orders of magnitude.
//!
//! ```sh
//! cargo run --release -p hrmc-experiments --bin scalability
//! # fan-out sweep only, chosen populations (CI smoke):
//! HRMC_EXP_FANOUT=10000 cargo run --release -p hrmc-experiments --bin scalability
//! ```

use hrmc_app::{mean, Scenario};
use hrmc_experiments::{ExpOptions, Table};
use serde_json::json;

/// The fan-out sweep: one lossless LAN transfer per population. Small
/// fixed transfer — the quantity under test is per-receiver overhead,
/// not bulk throughput — with PROBE fan-out paced so a single tick never
/// bursts O(receivers) unicast probes.
fn fanout_sweep(opts: &ExpOptions, populations: &[usize]) {
    let transfer = opts.transfer(200_000);
    let mut table = Table::new(
        &format!(
            "Scalability: sender fan-out, lossless LAN ({} KB, 1 Gbps)",
            transfer / 1000
        ),
        &[
            "receivers",
            "events",
            "ev/KB delivered",
            "sender ticks",
            "ticks/rcv",
            "sim s",
            "wall s",
        ],
    );
    let mut series = serde_json::Map::new();
    for &n in populations {
        // Modern-fabric footing, scaled with the population. The paper's
        // 1999 constants (300 MHz host, 10 Mbps LAN, 256 KB queues,
        // 30-packet NIC rings) each become a wall well before 10k
        // receivers, and every wall poisons the RTT estimator the same
        // way: feedback (JOINs, periodic UPDATEs at ~2/s per receiver)
        // queues or retries for seconds, the delayed echoes inflate
        // SRTT, and MINBUF = 10 RTTs then stalls buffer release by
        // minutes. A 1 Gbps fabric with population-sized queues and a
        // ~100x CPU keeps the sweep measuring protocol- and
        // simulator-side scaling rather than 1999 hardware.
        let mut scenario =
            Scenario::lan(n, 1_000_000_000, 256 * 1024, transfer).with_probe_batch(64);
        scenario.cpu_scale = 0.01;
        // The JOIN burst and the grid-aligned periodic-UPDATE waves each
        // land on the router as ~n packets in one tick; the queue must
        // hold a couple of such waves or the shed packets turn into
        // retries (and SRTT poison, as above).
        scenario.router_queue = scenario.router_queue.max(2 * n);
        // Pace the data plane at the paper's 10 Mbps while control
        // traffic rides the full fabric. This keeps the transfer long
        // enough to span the JOIN wave, so the release gate really is
        // evaluated against n live members rather than an empty group.
        scenario.max_rate_factor = 0.01;
        // The JOIN handshake answers every receiver unicast; the burst
        // must fit the sender's transmit ring or dropped responses
        // trigger JOIN retries (whose stale echoes again poison SRTT).
        scenario.sender_txqueue = scenario.sender_txqueue.max(n / 4);
        let started = std::time::Instant::now();
        let r = scenario.run();
        let wall = started.elapsed();
        assert!(r.completed, "fan-out run did not complete at n={n}");
        assert!(r.all_intact(), "fan-out run corrupted data at n={n}");
        if std::env::var("HRMC_EXP_DEBUG").is_ok() {
            eprintln!(
                "n={n} probes={} keepalives={} updates={} naks={} retrans={} data={} joins={} ticks0={} deferred={}",
                r.sender.probes_sent, r.sender.keepalives_sent, r.sender.updates_received,
                r.sender.naks_received, r.sender.retransmissions, r.sender.data_packets_sent,
                r.sender.joins, r.host_ticks[0], r.sender.probes_deferred_by_batch,
            );
        }
        let delivered: u64 = r.receivers.iter().map(|x| x.bytes).sum();
        let ev_per_kb = r.events_popped as f64 * 1000.0 / delivered as f64;
        let sender_ticks = r.host_ticks[0];
        let ticks_per_rcv = sender_ticks as f64 / n as f64;
        table.row(vec![
            n.to_string(),
            r.events_popped.to_string(),
            format!("{ev_per_kb:.2}"),
            sender_ticks.to_string(),
            format!("{ticks_per_rcv:.3}"),
            format!("{:.2}", r.elapsed_us as f64 / 1e6),
            format!("{:.2}", wall.as_secs_f64()),
        ]);
        series.insert(
            n.to_string(),
            json!({
                "events_popped": r.events_popped,
                "events_per_delivered_kb": ev_per_kb,
                "sender_ticks": sender_ticks,
                "sender_ticks_per_receiver": ticks_per_rcv,
                "elapsed_us": r.elapsed_us,
                "wall_ms": wall.as_millis() as u64,
                "peak_queue_len": r.peak_queue_len,
            }),
        );
    }
    table.print();
    println!(
        "Sender ticks per receiver fall as the population grows 1k -> 100k:\n\
         per-receiver sender cost is bounded by the O(log n) membership\n\
         index and the deadline-heap sweep, not by the group size. (Events\n\
         per delivered KB track raw control traffic — the receivers'\n\
         periodic UPDATE waves are inherently O(n) — so that column grows\n\
         with the feedback volume, not with sender-side work.)"
    );
    opts.save_json("scalability_fanout", &serde_json::Value::Object(series));
}

fn main() {
    let opts = ExpOptions::from_env();
    // `HRMC_EXP_FANOUT=n[,n...]` runs only the fan-out sweep at the
    // listed populations (the CI smoke path). Unset: both sweeps, with
    // the fan-out sweep at the full 1k/10k/100k grid.
    if let Ok(spec) = std::env::var("HRMC_EXP_FANOUT") {
        let populations: Vec<usize> = spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        if !populations.is_empty() {
            fanout_sweep(&opts, &populations);
            return;
        }
    }
    let transfer = opts.transfer(4_000_000);
    let loss = 0.01;
    let mut table = Table::new(
        &format!(
            "Scalability: sender retransmissions, centralized vs local recovery \
             ({} MB, 10 Mbps, {:.1}% loss)",
            transfer / 1_000_000,
            loss * 100.0
        ),
        &[
            "receivers",
            "central",
            "local",
            "peer repairs",
            "cancelled",
            "thr c",
            "thr l",
        ],
    );
    let mut series = serde_json::Map::new();
    for receivers in [2usize, 5, 10, 20, 40] {
        let base = Scenario::lan(receivers, 10_000_000, 256 * 1024, transfer).with_loss(loss);
        let central = opts.run_seeds(&base);
        let local = opts.run_seeds(&base.clone().with_local_recovery());
        for r in central.iter().chain(local.iter()) {
            assert!(
                r.completed && r.all_intact(),
                "unreliable run at n={receivers}"
            );
        }
        let c_retrans = mean(
            &central
                .iter()
                .map(|r| r.sender.retransmissions as f64)
                .collect::<Vec<_>>(),
        );
        let l_retrans = mean(
            &local
                .iter()
                .map(|r| r.sender.retransmissions as f64)
                .collect::<Vec<_>>(),
        );
        let repairs = mean(
            &local
                .iter()
                .map(|r| {
                    r.receivers
                        .iter()
                        .map(|x| x.stats.repairs_sent)
                        .sum::<u64>() as f64
                })
                .collect::<Vec<_>>(),
        );
        let cancelled = mean(
            &local
                .iter()
                .map(|r| r.sender.retransmissions_cancelled as f64)
                .collect::<Vec<_>>(),
        );
        let thr_c = mean(
            &central
                .iter()
                .map(|r| r.throughput_mbps)
                .collect::<Vec<_>>(),
        );
        let thr_l = mean(&local.iter().map(|r| r.throughput_mbps).collect::<Vec<_>>());
        table.row(vec![
            receivers.to_string(),
            format!("{c_retrans:.0}"),
            format!("{l_retrans:.0}"),
            format!("{repairs:.0}"),
            format!("{cancelled:.0}"),
            format!("{thr_c:.2}"),
            format!("{thr_l:.2}"),
        ]);
        series.insert(
            receivers.to_string(),
            json!({
                "central_retransmissions": c_retrans,
                "local_retransmissions": l_retrans,
                "peer_repairs": repairs,
                "cancelled": cancelled,
            }),
        );
    }
    table.print();
    println!(
        "Peer repairs absorb retransmission work that would otherwise land on\n\
         the sender; the effect grows with the population, which is exactly\n\
         the scalability argument of the paper's future-work item (3)."
    );
    opts.save_json("scalability", &serde_json::Value::Object(series));
    fanout_sweep(&opts, &[1_000, 10_000, 100_000]);
}
