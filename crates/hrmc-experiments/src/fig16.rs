//! Figure 16: "Performance of H-RMC on a 100 Mbps network (simulated)"
//! — (a) throughput and (b) rate-reduce requests for 10 receivers across
//! Tests 1–5, plus the §5.2 closing claim (experiment id S1): "For 100
//! receivers ... the maximum throughput of H-RMC reduced to
//! approximately 66 Mbps on the 100 Mbps network with large buffers,
//! which is not a significant decrease."

use serde_json::json;

use crate::fig15::panels;
use crate::{ExpOptions, MBPS_100};

/// Run both panels and the S1 claim check.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    let (thr, rr, series) = panels(
        opts.receivers.unwrap_or(10),
        MBPS_100,
        "Figure 16(a/b): 10 receivers, 100 Mbps",
        opts,
    );
    thr.print();
    rr.print();
    out.insert("ab_10_receivers".into(), series);

    // S1: 100 receivers, Test 1, large buffer.
    let receivers = opts.receivers.map(|r| r * 10).unwrap_or(100);
    let (thr100, _) = crate::fig15::cell(1, receivers, 1024 * 1024, MBPS_100, opts);
    println!(
        "== S1: Test 1, {receivers} receivers, 1024K buffers, 100 Mbps ==\n\
         max throughput = {thr100:.1} Mbps (paper: ~66 Mbps, \"not a significant decrease\")\n"
    );
    out.insert(
        "s1_100_receivers".into(),
        json!({"receivers": receivers, "mbps": thr100}),
    );

    let value = serde_json::Value::Object(out);
    opts.save_json("fig16", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig15::cell;

    fn quick() -> ExpOptions {
        // Full-size transfers: the rate-request ordering the paper claims
        // only emerges at scale (tiny scaled-down transfers invert it).
        ExpOptions {
            repeats: 1,
            scale_down: 1,
            out_dir: std::env::temp_dir().join("hrmc-fig16-test"),
            receivers: Some(5),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn hundred_mbps_ordering_holds() {
        let opts = quick();
        let buffer = 1024 * 1024;
        let (t1, _) = cell(1, 5, buffer, MBPS_100, &opts);
        let (t3, _) = cell(3, 5, buffer, MBPS_100, &opts);
        assert!(
            t1 > t3,
            "Test 1 must beat Test 3 at 100 Mbps: {t1:.1} vs {t3:.1}"
        );
    }

    #[test]
    fn rate_requests_exceed_10mbps_levels() {
        // Paper: "the number of rate requests is relatively larger than
        // that obtained for the 10Mbps network" (receiver windows fill
        // faster while the application drains no faster).
        let opts = quick();
        let buffer = 64 * 1024;
        let (_, rr_fast) = cell(3, 5, buffer, MBPS_100, &opts);
        let (_, rr_slow) = cell(3, 5, buffer, crate::MBPS_10, &opts);
        assert!(
            rr_fast >= rr_slow,
            "100 Mbps should provoke at least as many rate requests: {rr_fast} vs {rr_slow}"
        );
    }
}
