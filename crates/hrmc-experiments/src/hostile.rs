//! Hostile-network scenario matrix: the link-dynamics counterpart of
//! the fault matrix in [`crate::churn`]. One fixed transfer is re-run
//! under a pinned set of adversarial *network weather* regimes —
//! capacity collapse and recovery, bufferbloat, jitter storms, an
//! impaired feedback uplink, receiver migration, and all of it at once
//! — and every regime is held to three graceful-degradation contracts:
//!
//! 1. **No panic, no livelock**: the run terminates and its simulator
//!    event count stays proportional to the bytes it delivered
//!    ([`MAX_EVENTS_PER_BYTE`]).
//! 2. **Degrade**: regimes that squeeze capacity must actually engage
//!    the control plane (rate halvings, queue overflows) rather than
//!    sail through on modeling gaps.
//! 3. **Recover, don't amputate**: jitter- and delay-only episodes
//!    must complete with zero ejections — latency is not death — and
//!    healing regimes must still finish the transfer.

use hrmc_app::{mean, Scenario};
use hrmc_core::{AlertRule, HealthConfig};
use hrmc_sim::{CharacteristicGroup, GroupSpec, LinkAction, LinkSchedule, SimReport};
use serde_json::json;

use crate::{ExpOptions, Table, MBPS_10, MB_10};

/// Default receiver population.
pub const RECEIVERS: usize = 6;

/// Livelock bound: simulator events popped per byte delivered to any
/// receiver. Healthy runs across the matrix sit near 0.02–0.2
/// events/byte (a packet costs a handful of hops and a segment is
/// ~1.4 KB); a control-plane livelock (NAK storm, probe loop) blows
/// through this by orders of magnitude.
pub const MAX_EVENTS_PER_BYTE: f64 = 2.0;

/// Collapse-and-heal timing shared by the scenarios that ramp capacity.
/// The collapse lands early enough that even quick-mode transfers are
/// mid-flight when the floor drops out.
const COLLAPSE_AT_US: u64 = 150_000;
const HEAL_AT_US: u64 = 1_200_000;

fn base(opts: &ExpOptions) -> Scenario {
    let receivers = opts.receivers.unwrap_or(RECEIVERS);
    Scenario::lan(receivers, MBPS_10, 256 * 1024, opts.transfer(MB_10)).with_loss(0.01)
}

fn collapse_schedule() -> LinkSchedule {
    let mut links = LinkSchedule::default();
    // The collapsed backhaul also buffers less: squeeze the queue so
    // the overload is visible as drops, not just delay.
    links.push(
        COLLAPSE_AT_US,
        LinkAction::SetRouterQueue {
            router: 0,
            packets: 32,
        },
    );
    links.collapse_recover(
        0,
        COLLAPSE_AT_US,
        HEAL_AT_US,
        MBPS_10,
        MBPS_10 / 20,
        100_000,
        4,
    );
    links.push(
        HEAL_AT_US + 200_000,
        LinkAction::SetRouterQueue {
            router: 0,
            packets: 512,
        },
    );
    links
}

fn jitter_schedule() -> LinkSchedule {
    let mut links = LinkSchedule::default();
    // Eight 30 ms delay spikes on a 50 µs LAN — three orders of
    // magnitude of jitter, zero loss.
    links.jitter_spikes(0, 200_000, 150_000, 8, 50, 30_000);
    links
}

fn uplink_schedule() -> LinkSchedule {
    let mut links = LinkSchedule::default();
    // Feedback path only: 30% loss and +20 ms on everything the
    // receivers send upstream, healing after 1.5 s.
    links.push(
        100_000,
        LinkAction::SetUpPath {
            extra_delay_us: 20_000,
            loss: 0.30,
        },
    );
    links.push(
        1_600_000,
        LinkAction::SetUpPath {
            extra_delay_us: 0,
            loss: 0.0,
        },
    );
    links
}

fn bufferbloat_schedule() -> LinkSchedule {
    let mut links = LinkSchedule::default();
    links.bufferbloat(0, 200_000, 4096, MBPS_10 / 5);
    links
}

fn migration_scenario(opts: &ExpOptions) -> Scenario {
    // Two identical edge groups behind a backbone; one receiver per
    // group so the migration target router exists (router 0 is the
    // backbone, 1 and 2 the group routers).
    let specs = vec![
        GroupSpec {
            group: CharacteristicGroup::A,
            receivers: 1,
        },
        GroupSpec {
            group: CharacteristicGroup::A,
            receivers: 1,
        },
    ];
    let mut links = LinkSchedule::default();
    links.push(
        300_000,
        LinkAction::Migrate {
            receiver: 0,
            path: vec![0, 2],
        },
    );
    links.push(
        900_000,
        LinkAction::Migrate {
            receiver: 0,
            path: vec![0, 1],
        },
    );
    Scenario::groups(specs, MBPS_10, 256 * 1024, opts.transfer(MB_10)).with_links(links)
}

fn combined_schedule() -> LinkSchedule {
    let mut links = collapse_schedule();
    links.jitter_spikes(0, 400_000, 200_000, 5, 50, 20_000);
    links.push(
        200_000,
        LinkAction::SetUpPath {
            extra_delay_us: 10_000,
            loss: 0.15,
        },
    );
    links.push(
        2_000_000,
        LinkAction::SetUpPath {
            extra_delay_us: 0,
            loss: 0.0,
        },
    );
    links
}

/// The pinned matrix: `(regime label, scenario)` pairs. `baseline`
/// carries an empty schedule and anchors the degradation comparisons.
/// Every regime runs with the online health monitor armed at default
/// thresholds — the matrix doubles as the monitor's calibration
/// fixture (quiet regimes must stay silent, violent ones must alert).
pub fn scenarios(opts: &ExpOptions) -> Vec<(&'static str, Scenario)> {
    // Jitter-only regimes run with aggressive ejection thresholds so
    // "latency is not death" is tested against the *paranoid* sender,
    // not a forgiving one.
    let mut jitter = base(opts).with_links(jitter_schedule());
    jitter.probe_failure_limit = 3;
    jitter.member_silence_us = 3_000_000;
    let matrix = vec![
        ("baseline", base(opts)),
        (
            "capacity-collapse",
            base(opts).with_links(collapse_schedule()),
        ),
        ("bufferbloat", base(opts).with_links(bufferbloat_schedule())),
        ("jitter-spikes", jitter),
        ("uplink-impair", base(opts).with_links(uplink_schedule())),
        ("mobile-churn", migration_scenario(opts)),
        (
            "hostile-combined",
            base(opts).with_links(combined_schedule()),
        ),
    ];
    matrix
        .into_iter()
        .map(|(label, s)| {
            let cfg = HealthConfig {
                probe_failure_limit: s.probe_failure_limit,
                ..HealthConfig::default()
            };
            (label, s.with_health(cfg))
        })
        .collect()
}

/// Total bytes delivered to applications across all receivers.
fn delivered_bytes(r: &SimReport) -> u64 {
    r.receivers.iter().map(|x| x.bytes).sum()
}

/// The no-livelock contract: events popped per delivered byte.
pub fn events_per_byte(r: &SimReport) -> f64 {
    r.events_popped as f64 / delivered_bytes(r).max(1) as f64
}

/// Check one regime's graceful-degradation invariants against its
/// baseline. Panics (with the regime name) on violation — callers are
/// harnesses and tests.
pub fn check_invariants(label: &str, runs: &[SimReport], baseline: &[SimReport]) {
    for r in runs {
        assert!(
            r.completed,
            "{label}: transfer did not complete within the horizon"
        );
        assert!(r.all_intact(), "{label}: delivered bytes were corrupted");
        let epb = events_per_byte(r);
        assert!(
            epb <= MAX_EVENTS_PER_BYTE,
            "{label}: livelock suspected — {epb:.3} events/byte \
             (bound {MAX_EVENTS_PER_BYTE})"
        );
        assert_eq!(
            r.false_ejections, 0,
            "{label}: a member that later proved alive was ejected"
        );
        // The online monitor's false-ejection verdict must agree with
        // the ground-truth audit above.
        assert_eq!(
            r.alerts_raised("false_ejection"),
            0,
            "{label}: the online monitor flagged a false ejection the \
             ground truth does not corroborate"
        );
    }
    let mean_elapsed =
        |rs: &[SimReport]| rs.iter().map(|r| r.elapsed_us).sum::<u64>() / rs.len().max(1) as u64;
    match label {
        "baseline" => {
            for r in runs {
                assert_eq!(r.link_events_applied, 0, "baseline schedule must be empty");
                assert!(
                    r.alerts.is_empty(),
                    "{label}: a healthy run raised alerts: {:?}",
                    r.alerts
                );
            }
        }
        "capacity-collapse" => {
            for r in runs {
                assert!(
                    r.rate_halvings >= 1,
                    "{label}: sender never throttled under collapse"
                );
                assert!(
                    r.router_overflow_drops > 0,
                    "{label}: collapsed queue never overflowed"
                );
                let raised = r.alerts_raised("nak_storm") + r.alerts_raised("backlog_growth");
                let cleared = r.alerts_cleared("nak_storm") + r.alerts_cleared("backlog_growth");
                assert!(
                    raised >= 1,
                    "{label}: the monitor slept through the collapse \
                     (no nak_storm/backlog_growth alert)"
                );
                assert!(
                    cleared >= 1,
                    "{label}: no alert cleared after the heal \
                     (alerts: {:?})",
                    r.alerts
                );
            }
            assert!(
                mean_elapsed(runs) > mean_elapsed(baseline),
                "{label}: collapse cost no time at all"
            );
        }
        "bufferbloat" => {
            for r in runs {
                assert!(
                    r.final_rtt_us > baseline.iter().map(|b| b.final_rtt_us).min().unwrap_or(0),
                    "{label}: standing queue never inflated the RTT estimate"
                );
            }
        }
        "jitter-spikes" => {
            for r in runs {
                assert_eq!(
                    r.sender.members_ejected, 0,
                    "{label}: jitter-only episode ejected a member"
                );
                assert!(
                    r.alerts.is_empty(),
                    "{label}: delay-only jitter must not alarm the \
                     monitor (latency is not death): {:?}",
                    r.alerts
                );
            }
        }
        "uplink-impair" => {
            for r in runs {
                assert!(
                    r.up_loss_drops > 0,
                    "{label}: impaired uplink dropped nothing"
                );
            }
        }
        "mobile-churn" => {
            for r in runs {
                assert!(
                    r.migration_drops > 0,
                    "{label}: migration never stranded an in-flight packet"
                );
            }
        }
        "hostile-combined" => {
            for r in runs {
                assert!(r.rate_halvings >= 1, "{label}: no degradation response");
            }
        }
        _ => {}
    }
}

/// Run the matrix, assert every invariant, and print/save the results.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let headers = [
        "regime", "Mbps", "retrans", "halvings", "overflow", "uploss", "migr", "ej", "falseej",
        "alerts", "ev/B",
    ];
    let mut table = Table::new("hostile-network matrix, 10 Mbps LAN, 1% loss", &headers);
    let mut series = serde_json::Map::new();
    let mut alert_series = serde_json::Map::new();
    let matrix = scenarios(opts);
    let baseline_runs = opts.run_seeds(&matrix[0].1);
    for (label, scenario) in &matrix {
        let runs = if *label == "baseline" {
            baseline_runs.clone()
        } else {
            opts.run_seeds(scenario)
        };
        check_invariants(label, &runs, &baseline_runs);
        let thr: Vec<f64> = runs.iter().map(|r| r.throughput_mbps).collect();
        let retrans: Vec<f64> = runs
            .iter()
            .map(|r| r.sender.retransmissions as f64)
            .collect();
        let sum = |f: fn(&SimReport) -> u64| -> u64 { runs.iter().map(f).sum() };
        let epb: Vec<f64> = runs.iter().map(events_per_byte).collect();
        let alert_transitions: u64 = runs.iter().map(|r| r.alerts.len() as u64).sum();
        table.row(vec![
            label.to_string(),
            format!("{:.2}", mean(&thr)),
            format!("{:.1}", mean(&retrans)),
            sum(|r| r.rate_halvings).to_string(),
            sum(|r| r.router_overflow_drops).to_string(),
            sum(|r| r.up_loss_drops).to_string(),
            sum(|r| r.migration_drops).to_string(),
            sum(|r| r.sender.members_ejected).to_string(),
            sum(|r| r.false_ejections).to_string(),
            alert_transitions.to_string(),
            format!("{:.3}", mean(&epb)),
        ]);
        // Per-rule alert fixture: the expected online-monitor verdict
        // for each regime, saved alongside the degradation series so CI
        // archives what "healthy monitoring" looks like.
        let mut by_rule = serde_json::Map::new();
        for rule in AlertRule::ALL {
            let name = rule.name();
            let raised: u64 = runs.iter().map(|r| r.alerts_raised(name)).sum();
            let cleared: u64 = runs.iter().map(|r| r.alerts_cleared(name)).sum();
            if raised + cleared > 0 {
                by_rule.insert(
                    name.to_string(),
                    json!({"raised": raised, "cleared": cleared}),
                );
            }
        }
        alert_series.insert(
            label.to_string(),
            json!({
                "transitions": alert_transitions,
                "by_rule": serde_json::Value::Object(by_rule),
            }),
        );
        series.insert(
            label.to_string(),
            json!({
                "mbps": mean(&thr),
                "retransmissions": mean(&retrans),
                "rate_halvings": sum(|r| r.rate_halvings),
                "router_overflow_drops": sum(|r| r.router_overflow_drops),
                "up_loss_drops": sum(|r| r.up_loss_drops),
                "migration_drops": sum(|r| r.migration_drops),
                "members_ejected": sum(|r| r.sender.members_ejected),
                "false_ejections": sum(|r| r.false_ejections),
                "link_events_applied": sum(|r| r.link_events_applied),
                "events_per_byte": mean(&epb),
                "alert_transitions": alert_transitions,
            }),
        );
    }
    table.print();
    let value = serde_json::Value::Object(series);
    opts.save_json("hostile", &value);
    opts.save_json("alerts", &serde_json::Value::Object(alert_series));
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 10,
            out_dir: std::env::temp_dir().join("hrmc-hostile-test"),
            receivers: Some(4),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn hostile_matrix_holds_every_invariant() {
        let opts = quick();
        let v = run(&opts);
        // run() already asserts the per-regime invariants; spot-check
        // that each regime's signature detector actually fired.
        assert!(v["capacity-collapse"]["rate_halvings"].as_u64().unwrap() >= 1);
        assert!(v["uplink-impair"]["up_loss_drops"].as_u64().unwrap() > 0);
        assert!(v["mobile-churn"]["migration_drops"].as_u64().unwrap() > 0);
        assert_eq!(v["jitter-spikes"]["members_ejected"].as_u64().unwrap(), 0);
        assert_eq!(v["baseline"]["link_events_applied"].as_u64().unwrap(), 0);
        assert!(v["hostile-combined"]["events_per_byte"].as_f64().unwrap() <= MAX_EVENTS_PER_BYTE);
        // The online-monitor fixture: quiet regimes silent, the
        // collapse loud, and the alert artifact on disk for CI.
        assert_eq!(v["baseline"]["alert_transitions"].as_u64().unwrap(), 0);
        assert_eq!(v["jitter-spikes"]["alert_transitions"].as_u64().unwrap(), 0);
        assert!(
            v["capacity-collapse"]["alert_transitions"]
                .as_u64()
                .unwrap()
                >= 2
        );
        let alerts = std::fs::read_to_string(opts.out_dir.join("alerts.json")).unwrap();
        let alerts: serde_json::Value = serde_json::from_str(&alerts).unwrap();
        assert!(
            alerts["capacity-collapse"]["by_rule"]
                .as_object()
                .is_some_and(|m| !m.is_empty()),
            "{alerts:?}"
        );
    }
}
