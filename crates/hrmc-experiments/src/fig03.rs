//! Figure 3: "Percentage of time sender has complete receiver
//! information when releasing buffer space" — (a) without updates (the
//! original RMC), (b) with updates (H-RMC).
//!
//! Paper setup: "a simulation study of 10 receivers in different
//! environments. These simulations use the following loss rates: 0.005%
//! for LAN, 0.5% for MAN, 2% for WAN. The per-socket kernel buffer size
//! was varied from 64Kbytes to 1024Kbytes."

use hrmc_app::{mean, Scenario};
use hrmc_sim::{CharacteristicGroup, GroupSpec};
use serde_json::json;

use crate::{buf_label, ExpOptions, Table, BUFFERS, MBPS_10, MB_10};

/// The three environments, with the paper's loss rates carried by the
/// characteristic groups (A = LAN, B = MAN, C = WAN).
pub const ENVIRONMENTS: [(&str, CharacteristicGroup); 3] = [
    ("LAN", CharacteristicGroup::A),
    ("MAN", CharacteristicGroup::B),
    ("WAN", CharacteristicGroup::C),
];

/// One cell of the figure: the completeness ratio for a mode, an
/// environment, and a buffer size (averaged over seeds).
fn cell(rmc: bool, group: CharacteristicGroup, buffer: usize, opts: &ExpOptions) -> f64 {
    let receivers = opts.receivers.unwrap_or(10);
    let mut s = Scenario::groups(
        vec![GroupSpec { group, receivers }],
        MBPS_10,
        buffer,
        opts.transfer(MB_10),
    );
    if rmc {
        s = s.rmc();
    }
    let ratios: Vec<f64> = opts
        .run_seeds(&s)
        .iter()
        .map(|r| r.complete_info_ratio * 100.0)
        .collect();
    mean(&ratios)
}

/// Run the whole figure; prints both panels and returns the series.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    for (panel, rmc) in [
        ("a_without_updates_rmc", true),
        ("b_with_updates_hrmc", false),
    ] {
        let title = if rmc {
            "Figure 3(a): % complete info at release — WITHOUT updates (RMC)"
        } else {
            "Figure 3(b): % complete info at release — WITH updates (H-RMC)"
        };
        let mut table = Table::new(title, &["buffer", "LAN", "MAN", "WAN"]);
        let mut panel_series = serde_json::Map::new();
        for &buffer in &BUFFERS {
            let mut cells = vec![buf_label(buffer)];
            for (env, group) in ENVIRONMENTS {
                let v = cell(rmc, group, buffer, opts);
                cells.push(format!("{v:.1}"));
                panel_series
                    .entry(env)
                    .or_insert_with(|| json!([]))
                    .as_array_mut()
                    .unwrap()
                    .push(json!({"buffer": buffer, "percent": v}));
            }
            table.row(cells);
        }
        table.print();
        out.insert(panel.to_string(), serde_json::Value::Object(panel_series));
    }
    let value = serde_json::Value::Object(out);
    opts.save_json("fig03", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 50,
            out_dir: std::env::temp_dir().join("hrmc-fig03-test"),
            receivers: Some(3),
            ..ExpOptions::default()
        }
    }

    #[test]
    fn updates_raise_completeness_in_lan() {
        let opts = quick();
        let rmc = cell(true, CharacteristicGroup::A, 64 * 1024, &opts);
        let hrmc = cell(false, CharacteristicGroup::A, 64 * 1024, &opts);
        // The paper's headline: in a low-loss environment the RMC sender
        // almost never has full information, while updates fix that.
        assert!(
            hrmc >= rmc,
            "updates must not lower completeness: hrmc={hrmc:.1} rmc={rmc:.1}"
        );
        assert!(hrmc > 50.0, "H-RMC completeness too low: {hrmc:.1}");
    }

    #[test]
    fn run_produces_both_panels() {
        let v = run(&quick());
        assert!(v.get("a_without_updates_rmc").is_some());
        assert!(v.get("b_with_updates_hrmc").is_some());
        let lan = &v["b_with_updates_hrmc"]["LAN"];
        assert_eq!(lan.as_array().unwrap().len(), BUFFERS.len());
    }
}
