//! Figure 13: "Feedback activity of H-RMC on a 100 Mbps network
//! (experimental)" — NAK counts in the memory-to-memory tests: (a)
//! 10 MB, (b) 40 MB.
//!
//! The paper's finding: "there were no NAKs either for a buffer size up
//! to 1024K ... an increase in buffer size beyond 1024K causes some NAKs
//! to be generated. ... this seems to indicate that NAKs are being
//! caused due to dropping of packets by the network card. With large
//! kernel buffers, the send window is large as well. As a result, the
//! sender can transmit a large amount of data in one jiffy and it is
//! likely that the network card is not being able to accept data at
//! these rates and is dropping packets."
//!
//! Reproducing the *mechanism* requires the transmit path to outrun the
//! NIC: the real Pentium II's DMA-overlapped send path was faster than
//! the conservative (10 + 0.025·l) + 150 µs serial model the paper used
//! in its simulator, so this harness runs the hosts at
//! [`FIG13_CPU_SCALE`] (2× the modelled speed) with the rate window
//! uncalibrated to the card ([`FIG13_RATE_FACTOR`]), letting large
//! windows burst past the card's bounded transmit queue exactly as the
//! testbed did. With those knobs the NAK onset lands where the paper
//! saw it: none through 512 K, appearing beyond 1024 K.

use hrmc_app::{mean, Scenario};
use serde_json::json;

use crate::fig10::RECEIVER_COUNTS;
use crate::{buf_label, ExpOptions, Table, BUFFERS_EXTENDED, MBPS_100, MB_10, MB_40};

/// Host speed for the Figure 13 regime (see module docs).
pub const FIG13_CPU_SCALE: f64 = 0.5;

/// Rate-cap overdrive for the Figure 13 regime: the paper's kernel let
/// the rate window grow past what the card could accept.
pub const FIG13_RATE_FACTOR: f64 = 2.0;

/// (NAKs, sender-NIC drops) for one cell.
fn cell(receivers: usize, transfer: u64, buffer: usize, opts: &ExpOptions) -> (f64, f64) {
    let mut s = Scenario::lan(receivers, MBPS_100, buffer, opts.transfer(transfer));
    s.cpu_scale = FIG13_CPU_SCALE;
    s.max_rate_factor = FIG13_RATE_FACTOR;
    s.sender_txqueue = 100; // a 100 Mbps card's deeper ring (Linux default)
    let runs = opts.run_seeds(&s);
    let naks: Vec<f64> = runs.iter().map(|r| r.sender.naks_received as f64).collect();
    let drops: Vec<f64> = runs.iter().map(|r| r.sender_nic_drops as f64).collect();
    (mean(&naks), mean(&drops))
}

/// Run both panels (NAKs; NIC drops shown alongside as the cause).
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    for (key, title, transfer) in [
        (
            "a_naks_10MB",
            "Figure 13(a): NAK activity, 10 MB, memory-to-memory, 100 Mbps",
            MB_10,
        ),
        (
            "b_naks_40MB",
            "Figure 13(b): NAK activity, 40 MB, memory-to-memory, 100 Mbps",
            MB_40,
        ),
    ] {
        let mut table = Table::new(
            title,
            &[
                "buffer",
                "NAKs(1r)",
                "NAKs(2r)",
                "NAKs(3r)",
                "nic_drops(1r)",
            ],
        );
        let mut series = serde_json::Map::new();
        for &buffer in &BUFFERS_EXTENDED {
            let mut cells = vec![buf_label(buffer)];
            let mut drops_1r = 0.0;
            for &n in &RECEIVER_COUNTS {
                let (naks, drops) = cell(n, transfer, buffer, opts);
                if n == 1 {
                    drops_1r = drops;
                }
                cells.push(format!("{naks:.1}"));
                series
                    .entry(format!("{n}_receivers"))
                    .or_insert_with(|| json!([]))
                    .as_array_mut()
                    .unwrap()
                    .push(json!({"buffer": buffer, "naks": naks, "nic_drops": drops}));
            }
            cells.push(format!("{drops_1r:.1}"));
            table.row(cells);
        }
        table.print();
        out.insert(key.to_string(), serde_json::Value::Object(series));
    }
    let value = serde_json::Value::Object(out);
    opts.save_json("fig13", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 10,
            out_dir: std::env::temp_dir().join("hrmc-fig13-test"),
            receivers: None,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn small_buffers_produce_no_naks() {
        let opts = quick();
        let (naks, _) = cell(1, MB_10, 128 * 1024, &opts);
        assert_eq!(naks, 0.0, "NAKs with a 128K buffer contradict Figure 13");
    }

    #[test]
    fn very_large_buffers_produce_naks_via_nic_drops() {
        let opts = quick();
        let (naks, drops) = cell(1, MB_40, 4096 * 1024, &opts);
        assert!(
            naks > 0.0,
            "no NAKs at 4096K: the Figure 13 mechanism is missing"
        );
        assert!(drops > 0.0, "NAKs without NIC drops: wrong mechanism");
    }
}
