//! Shared experiment options parsed from the command line and
//! environment.

use hrmc_app::Scenario;
use hrmc_sim::SimReport;
use std::path::PathBuf;

/// Options common to every figure harness.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Runs per configuration (seeds 1..=repeats); paper averages 5.
    pub repeats: u64,
    /// Transfer-size divisor (quick mode sets 10).
    pub scale_down: u64,
    /// Directory for JSON output.
    pub out_dir: PathBuf,
    /// Receiver-count override where a figure supports it.
    pub receivers: Option<usize>,
    /// Worker threads for the parallel sweep runner (default: the
    /// machine's available parallelism; 1 forces sequential runs).
    pub jobs: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            repeats: 3,
            scale_down: 1,
            out_dir: PathBuf::from("results"),
            receivers: None,
            jobs: crate::sweep::default_jobs(),
        }
    }
}

impl ExpOptions {
    /// Parse from `std::env::args` plus environment variables.
    pub fn from_env() -> ExpOptions {
        let mut o = ExpOptions::default();
        if std::env::var("HRMC_EXP_QUICK").is_ok_and(|v| v != "0") {
            o.repeats = 1;
            o.scale_down = 10;
        }
        if let Ok(r) = std::env::var("HRMC_EXP_REPEATS") {
            if let Ok(r) = r.parse() {
                o.repeats = r;
            }
        }
        if let Ok(d) = std::env::var("HRMC_EXP_OUT") {
            o.out_dir = PathBuf::from(d);
        }
        if let Ok(j) = std::env::var("HRMC_EXP_JOBS") {
            if let Ok(j) = j.parse::<usize>() {
                o.jobs = j.max(1);
            }
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    o.repeats = 1;
                    o.scale_down = 10;
                }
                "--repeats" if i + 1 < args.len() => {
                    i += 1;
                    o.repeats = args[i].parse().unwrap_or(o.repeats);
                }
                "--receivers" if i + 1 < args.len() => {
                    i += 1;
                    o.receivers = args[i].parse().ok();
                }
                "--out" if i + 1 < args.len() => {
                    i += 1;
                    o.out_dir = PathBuf::from(&args[i]);
                }
                "--jobs" if i + 1 < args.len() => {
                    i += 1;
                    if let Ok(j) = args[i].parse::<usize>() {
                        o.jobs = j.max(1);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        o
    }

    /// Apply the quick-mode divisor to a transfer size.
    pub fn transfer(&self, full: u64) -> u64 {
        (full / self.scale_down).max(100_000)
    }

    /// Run `repeats` seeded copies of `scenario` across `jobs` worker
    /// threads (the parallel counterpart of [`Scenario::run_seeds`];
    /// reports come back ordered by seed, byte-identical to a
    /// sequential sweep).
    pub fn run_seeds(&self, scenario: &Scenario) -> Vec<SimReport> {
        crate::sweep::run_seeds(scenario, self.repeats, self.jobs)
    }

    /// Write a JSON value under `out_dir/<name>.json`.
    pub fn save_json(&self, name: &str, value: &serde_json::Value) {
        if std::fs::create_dir_all(&self.out_dir).is_err() {
            return;
        }
        let path = self.out_dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(path, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExpOptions::default();
        assert_eq!(o.repeats, 3);
        assert_eq!(o.scale_down, 1);
        assert_eq!(o.transfer(40_000_000), 40_000_000);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn transfer_scaling_floors() {
        let mut o = ExpOptions::default();
        o.scale_down = 10;
        assert_eq!(o.transfer(40_000_000), 4_000_000);
        assert_eq!(o.transfer(200_000), 100_000); // floor
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn save_json_roundtrip() {
        let mut o = ExpOptions::default();
        o.out_dir = std::env::temp_dir().join("hrmc-exp-test");
        let v = serde_json::json!({"a": [1, 2, 3]});
        o.save_json("unit", &v);
        let read: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(o.out_dir.join("unit.json")).unwrap())
                .unwrap();
        assert_eq!(read, v);
    }
}
