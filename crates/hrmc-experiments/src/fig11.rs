//! Figure 11: "Feedback activity in H-RMC on a 10 Mbps network
//! (experimental)" — the number of rate requests and NAKs arriving at
//! the sender during the disk-to-disk tests of Figure 10: (a) rate
//! requests 10 MB, (b) NAKs 10 MB, (c) rate requests 40 MB, (d) NAKs
//! 40 MB.

use hrmc_app::{mean, Scenario};
use serde_json::json;

use crate::fig10::RECEIVER_COUNTS;
use crate::{buf_label, ExpOptions, Table, BUFFERS, MBPS_10, MB_10, MB_40};

/// (rate requests, NAKs) arriving at the sender, averaged over seeds.
fn cell(receivers: usize, transfer: u64, buffer: usize, opts: &ExpOptions) -> (f64, f64) {
    let s = Scenario::lan(receivers, MBPS_10, buffer, opts.transfer(transfer)).disk_to_disk();
    let runs = opts.run_seeds(&s);
    let rr: Vec<f64> = runs
        .iter()
        .map(|r| r.sender.rate_requests_received as f64)
        .collect();
    let naks: Vec<f64> = runs.iter().map(|r| r.sender.naks_received as f64).collect();
    (mean(&rr), mean(&naks))
}

/// Run all four panels.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let mut out = serde_json::Map::new();
    for (size_key, size_name, transfer) in [("10MB", "10 MB", MB_10), ("40MB", "40 MB", MB_40)] {
        let mut rr_table = Table::new(
            &format!("Figure 11: rate requests, {size_name}, disk-to-disk"),
            &["buffer", "1 rcvr", "2 rcvrs", "3 rcvrs"],
        );
        let mut nak_table = Table::new(
            &format!("Figure 11: NAKs, {size_name}, disk-to-disk"),
            &["buffer", "1 rcvr", "2 rcvrs", "3 rcvrs"],
        );
        let mut rr_series = serde_json::Map::new();
        let mut nak_series = serde_json::Map::new();
        for &buffer in &BUFFERS {
            let mut rr_cells = vec![buf_label(buffer)];
            let mut nak_cells = vec![buf_label(buffer)];
            for &n in &RECEIVER_COUNTS {
                let (rr, naks) = cell(n, transfer, buffer, opts);
                rr_cells.push(format!("{rr:.1}"));
                nak_cells.push(format!("{naks:.1}"));
                for (series, v) in [(&mut rr_series, rr), (&mut nak_series, naks)] {
                    series
                        .entry(format!("{n}_receivers"))
                        .or_insert_with(|| json!([]))
                        .as_array_mut()
                        .unwrap()
                        .push(json!({"buffer": buffer, "count": v}));
                }
            }
            rr_table.row(rr_cells);
            nak_table.row(nak_cells);
        }
        rr_table.print();
        nak_table.print();
        out.insert(
            format!("rate_requests_{size_key}"),
            serde_json::Value::Object(rr_series),
        );
        out.insert(
            format!("naks_{size_key}"),
            serde_json::Value::Object(nak_series),
        );
    }
    let value = serde_json::Value::Object(out);
    opts.save_json("fig11", &value);
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions {
            repeats: 1,
            scale_down: 20,
            out_dir: std::env::temp_dir().join("hrmc-fig11-test"),
            receivers: None,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn lossless_lan_disk_tests_have_few_naks() {
        // Paper: "Data loss was minimal; consequently there were very few
        // NAKs" (Figure 11(b)).
        let opts = quick();
        let (_, naks) = cell(2, MB_10, 256 * 1024, &opts);
        assert!(naks < 20.0, "too many NAKs on a lossless LAN: {naks}");
    }

    #[test]
    fn small_buffers_see_more_rate_requests() {
        // Paper: "the number of rate-reduce requests is seen to reduce
        // with increase in buffer size."
        let opts = quick();
        let (rr_small, _) = cell(2, MB_10, 64 * 1024, &opts);
        let (rr_large, _) = cell(2, MB_10, 1024 * 1024, &opts);
        assert!(
            rr_small >= rr_large,
            "rate requests should shrink with buffer: {rr_small} -> {rr_large}"
        );
    }
}
