//! Plain-text table printing for the figure harnesses: aligned columns,
//! one row per buffer size (or test case), matching the paper's series.

/// A simple aligned-column table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["buffer", "throughput"]);
        t.row(vec!["64K".into(), "3.1".into()]);
        t.row(vec!["1024K".into(), "8.45".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Right-aligned: "64K" ends at the same column as "buffer".
        assert!(lines[1].starts_with("buffer"));
        assert!(lines[3].trim_start().starts_with("64K"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
