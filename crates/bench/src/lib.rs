//! Criterion benchmark crate for H-RMC; the benches live in `benches/`.
//! This library only re-exports small helpers shared between them.

/// Standard kernel-buffer sweep used across the paper's figures:
/// 64 KiB through 1024 KiB in powers of two.
pub const BUFFER_SWEEP: [usize; 5] = [64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];

/// 10 Mbps in bits per second.
pub const MBPS_10: u64 = 10_000_000;

/// 100 Mbps in bits per second.
pub const MBPS_100: u64 = 100_000_000;
