//! Ablation benches for the design choices DESIGN.md calls out. Each
//! measures end-to-end transfer time (the real currency of the paper's
//! figures) while toggling one mechanism:
//!
//! 1. updates on/off (RMC vs H-RMC — Figure 3's own ablation);
//! 2. dynamic vs fixed vs disabled update timer;
//! 3. probe-at-release vs early probes (paper future-work 1);
//! 4. unicast vs multicast probes (paper future-work 2);
//! 5. buffer size (the paper's primary knob).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hrmc_app::Scenario;
use hrmc_core::{ProbePolicy, ProbeTransport, UpdateMode};
use hrmc_sim::{SimParams, Simulation};

const KB: usize = 1024;

/// Run one scenario with a protocol-config tweak applied.
fn run_with(
    scenario: &Scenario,
    tweak: impl Fn(&mut hrmc_core::ProtocolConfig),
) -> hrmc_sim::SimReport {
    let mut params: SimParams = scenario.params();
    tweak(&mut params.protocol);
    Simulation::new(params).run()
}

fn base() -> Scenario {
    Scenario::lan(3, 10_000_000, 128 * KB, 400_000)
}

fn ablation_update_timer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_update_timer");
    group.sample_size(10);
    for (name, mode) in [
        ("dynamic", UpdateMode::Dynamic),
        ("fixed_50j", UpdateMode::Fixed(50)),
        ("fixed_5j", UpdateMode::Fixed(5)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_with(&base(), |p| p.update_mode = mode);
                assert!(r.completed);
                black_box((
                    r.elapsed_us,
                    r.sender.probes_sent,
                    r.sender.updates_received,
                ))
            })
        });
    }
    group.finish();
}

fn ablation_early_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_early_probe");
    group.sample_size(10);
    // Small buffers are where the paper predicts early probes help
    // ("probing receivers prior to buffer release time to avoid a
    // stop-and-wait scenario for small buffers").
    let scenario = Scenario::lan(2, 100_000_000, 64 * KB, 500_000);
    for (name, policy) in [
        ("at_release", ProbePolicy::AtRelease),
        ("early_2rtt", ProbePolicy::Early { lead_rtts: 2 }),
        ("early_5rtt", ProbePolicy::Early { lead_rtts: 5 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_with(&scenario, |p| p.probe_policy = policy);
                assert!(r.completed);
                black_box((r.elapsed_us, r.throughput_mbps))
            })
        });
    }
    group.finish();
}

fn ablation_multicast_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multicast_probe");
    group.sample_size(10);
    let scenario = Scenario::lan(10, 10_000_000, 64 * KB, 200_000);
    for (name, transport) in [
        ("unicast", ProbeTransport::Unicast),
        ("multicast_above_3", ProbeTransport::MulticastAbove(3)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_with(&scenario, |p| p.probe_transport = transport);
                assert!(r.completed);
                black_box((r.elapsed_us, r.sender.probes_sent))
            })
        });
    }
    group.finish();
}

fn ablation_buffer_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer");
    group.sample_size(10);
    for buf_kb in [64usize, 256, 1024] {
        group.bench_function(format!("{buf_kb}K"), |b| {
            b.iter(|| {
                let r = Scenario::lan(2, 100_000_000, buf_kb * KB, 500_000).run();
                assert!(r.completed);
                black_box(r.throughput_mbps)
            })
        });
    }
    group.finish();
}

fn ablation_fec(c: &mut Criterion) {
    use hrmc_sim::LossModel;
    let mut group = c.benchmark_group("ablation_fec");
    group.sample_size(10);
    for (name, fec) in [
        ("off", None),
        ("k4", Some(4)),
        ("k8", Some(8)),
        ("k16", Some(16)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = Scenario::wireless(
                    2,
                    10_000_000,
                    256 * KB,
                    300_000,
                    LossModel::wireless_fast_fading(),
                );
                if let Some(k) = fec {
                    s = s.with_fec(k);
                }
                let r = s.run();
                assert!(r.completed);
                black_box((r.elapsed_us, r.sender.retransmissions))
            })
        });
    }
    group.finish();
}

fn ablation_local_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_local_recovery");
    group.sample_size(10);
    let scenario = Scenario::lan(10, 10_000_000, 256 * KB, 400_000).with_loss(0.01);
    group.bench_function("centralized", |b| {
        b.iter(|| {
            let r = scenario.clone().run();
            assert!(r.completed);
            black_box((r.sender.retransmissions, r.elapsed_us))
        })
    });
    group.bench_function("local_recovery", |b| {
        b.iter(|| {
            let r = scenario.clone().with_local_recovery().run();
            assert!(r.completed);
            black_box((r.sender.retransmissions, r.elapsed_us))
        })
    });
    group.finish();
}

fn ablation_reliability_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mode");
    group.sample_size(10);
    group.bench_function("hybrid", |b| b.iter(|| black_box(base().run().elapsed_us)));
    group.bench_function("rmc_nak_only", |b| {
        b.iter(|| black_box(base().rmc().run().elapsed_us))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_update_timer,
    ablation_early_probe,
    ablation_multicast_probe,
    ablation_buffer_size,
    ablation_fec,
    ablation_local_recovery,
    ablation_reliability_mode
);
criterion_main!(benches);
