//! One benchmark group per paper figure: each runs a scaled-down
//! representative cell of the figure's parameter grid, so `cargo bench`
//! exercises every experiment's code path and tracks its cost. The
//! full-scale series are produced by the `hrmc-experiments` binaries
//! (`cargo run --release -p hrmc-experiments --bin fig10`, ...).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hrmc_app::Scenario;
use hrmc_sim::{topology::test_case, CharacteristicGroup, GroupSpec};

const KB: usize = 1024;

/// Figure 3: information completeness at buffer release, RMC vs H-RMC.
fn fig03(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03");
    group.sample_size(10);
    for (name, rmc) in [("rmc", true), ("hrmc", false)] {
        group.bench_function(format!("man_10r_128K/{name}"), |b| {
            b.iter(|| {
                let mut s = Scenario::groups(
                    vec![GroupSpec {
                        group: CharacteristicGroup::B,
                        receivers: 10,
                    }],
                    10_000_000,
                    128 * KB,
                    300_000,
                );
                if rmc {
                    s = s.rmc();
                }
                black_box(s.run().complete_info_ratio)
            })
        });
    }
    group.finish();
}

/// Figure 10: LAN throughput (memory and disk panels).
fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("mem_2r_256K_10Mbps", |b| {
        b.iter(|| {
            black_box(
                Scenario::lan(2, 10_000_000, 256 * KB, 500_000)
                    .run()
                    .throughput_mbps,
            )
        })
    });
    group.bench_function("disk_2r_256K_10Mbps", |b| {
        b.iter(|| {
            black_box(
                Scenario::lan(2, 10_000_000, 256 * KB, 500_000)
                    .disk_to_disk()
                    .run()
                    .throughput_mbps,
            )
        })
    });
    group.finish();
}

/// Figure 11: feedback activity in the disk tests.
fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("feedback_disk_3r_64K", |b| {
        b.iter(|| {
            let r = Scenario::lan(3, 10_000_000, 64 * KB, 500_000)
                .disk_to_disk()
                .run();
            black_box((r.sender.rate_requests_received, r.sender.naks_received))
        })
    });
    group.finish();
}

/// Figure 12: 100 Mbps memory throughput.
fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("mem_2r_512K_100Mbps", |b| {
        b.iter(|| {
            black_box(
                Scenario::lan(2, 100_000_000, 512 * KB, 1_000_000)
                    .run()
                    .throughput_mbps,
            )
        })
    });
    group.finish();
}

/// Figure 13: NIC-drop NAKs at very large buffers.
fn fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("mem_1r_4096K_fastcpu", |b| {
        b.iter(|| {
            let mut s = Scenario::lan(1, 100_000_000, 4096 * KB, 2_000_000);
            s.cpu_scale = hrmc_experiments::fig13::FIG13_CPU_SCALE;
            s.max_rate_factor = hrmc_experiments::fig13::FIG13_RATE_FACTOR;
            let r = s.run();
            black_box((r.sender.naks_received, r.sender_nic_drops))
        })
    });
    group.finish();
}

/// Figure 15: the 10 Mbps characteristic-group tests.
fn fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    for test in [1usize, 3, 5] {
        group.bench_function(format!("test{test}_6r_512K_10Mbps"), |b| {
            b.iter(|| {
                black_box(
                    Scenario::groups(test_case(test, 6), 10_000_000, 512 * KB, 300_000)
                        .run()
                        .throughput_mbps,
                )
            })
        });
    }
    group.finish();
}

/// Figure 16: the 100 Mbps characteristic-group tests.
fn fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("test2_6r_512K_100Mbps", |b| {
        b.iter(|| {
            black_box(
                Scenario::groups(test_case(2, 6), 100_000_000, 512 * KB, 500_000)
                    .run()
                    .throughput_mbps,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig03, fig10, fig11, fig12, fig13, fig15, fig16);
criterion_main!(benches);
