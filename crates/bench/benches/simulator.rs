//! Benchmarks of the discrete-event simulator substrate itself: raw
//! event-queue throughput and complete small transfers (events per
//! second is what bounds how large an experiment the harnesses can run).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hrmc_app::Scenario;
use hrmc_sim::queue::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Interleaved schedule/pop with a pseudo-random spread.
            let mut t = 1u64;
            for i in 0..n {
                t = t.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000;
                q.schedule(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_transfer");
    group.sample_size(10);
    group.bench_function("lan_200KB_2r_lossless", |b| {
        b.iter(|| {
            let r = Scenario::lan(2, 10_000_000, 256 * 1024, 200_000).run();
            assert!(r.completed);
            black_box(r.elapsed_us)
        })
    });
    group.bench_function("lan_200KB_2r_1pct_loss", |b| {
        b.iter(|| {
            let r = Scenario::lan(2, 10_000_000, 256 * 1024, 200_000)
                .with_loss(0.01)
                .run();
            assert!(r.completed);
            black_box(r.elapsed_us)
        })
    });
    group.bench_function("wan_200KB_5r_test3", |b| {
        b.iter(|| {
            let r = Scenario::groups(
                hrmc_sim::topology::test_case(3, 5),
                10_000_000,
                512 * 1024,
                200_000,
            )
            .run();
            assert!(r.completed);
            black_box(r.elapsed_us)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_transfers);
criterion_main!(benches);
