//! Micro-benchmarks of the protocol engines' hot paths: the transmitter
//! tick, the receiver's data path (in-order and out-of-order), and the
//! membership release-gate scan that runs on every buffer release.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hrmc_core::membership::Membership;
use hrmc_core::{PeerId, ProtocolConfig, ReceiverEngine, SenderEngine, JIFFY_US};
use hrmc_wire::{Packet, PacketType};

fn data(seq: u32, len: usize) -> Packet {
    let mut p = Packet::data(7000, 7001, seq, Bytes::from(vec![seq as u8; len]));
    p.header.rate_adv = 10_000_000;
    p
}

fn bench_sender_tick(c: &mut Criterion) {
    c.bench_function("sender/on_tick_with_traffic", |b| {
        b.iter_batched(
            || {
                let mut s = SenderEngine::new(
                    ProtocolConfig::hrmc().with_buffer(1 << 20),
                    7000,
                    7001,
                    0,
                    0,
                );
                s.submit(&vec![0u8; 1 << 19], 0);
                s
            },
            |mut s| {
                for i in 1..=20u64 {
                    s.on_tick(i * JIFFY_US);
                    while let Some(out) = s.poll_output() {
                        black_box(out);
                    }
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_receiver_paths(c: &mut Criterion) {
    c.bench_function("receiver/in_order_packet", |b| {
        b.iter_batched(
            || ReceiverEngine::new(ProtocolConfig::hrmc().with_buffer(1 << 22), 8000, 7001, 0),
            |mut r| {
                for seq in 0..100u32 {
                    r.handle_packet(&data(seq, 1400), u64::from(seq) * 100);
                }
                let mut buf = [0u8; 65536];
                while r.read(&mut buf, 10_000) > 0 {}
                r
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("receiver/out_of_order_recovery", |b| {
        b.iter_batched(
            || ReceiverEngine::new(ProtocolConfig::hrmc().with_buffer(1 << 22), 8000, 7001, 0),
            |mut r| {
                // Every 5th packet arrives late: gap detection + NAK +
                // out-of-order queue + drain.
                for seq in 0..100u32 {
                    if seq % 5 != 0 {
                        r.handle_packet(&data(seq, 1400), u64::from(seq) * 100);
                    }
                }
                for seq in (0..100u32).step_by(5) {
                    r.handle_packet(&data(seq, 1400), 20_000 + u64::from(seq));
                }
                while let Some(out) = r.poll_output() {
                    black_box(out);
                }
                r
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    for n in [10usize, 100, 1000] {
        group.bench_function(format!("release_gate_scan/{n}_receivers"), |b| {
            let mut m = Membership::new();
            for i in 0..n {
                m.add(PeerId(i as u32), 0, 0);
                m.update(PeerId(i as u32), 1000 + i as u32, 1);
            }
            b.iter(|| {
                // The all_have + lacking pair the sender runs per release.
                let ok = m.all_have(black_box(1500));
                let lacking = m.lacking(black_box(1500));
                (ok, lacking.len())
            })
        });
    }
    group.finish();
}

fn bench_feedback_processing(c: &mut Criterion) {
    c.bench_function("sender/feedback_burst", |b| {
        b.iter_batched(
            || {
                let mut s = SenderEngine::new(
                    ProtocolConfig::hrmc().with_buffer(1 << 20),
                    7000,
                    7001,
                    0,
                    0,
                );
                for p in 0..50u32 {
                    let join = Packet::control(PacketType::Join, 9, 7000, 0);
                    s.handle_packet(&join, PeerId(p), 0);
                }
                while s.poll_output().is_some() {}
                s
            },
            |mut s| {
                // 50 receivers each send an UPDATE: the hrmc_master_rcv path.
                for p in 0..50u32 {
                    let upd = Packet::control(PacketType::Update, 9, 7000, 100 + p);
                    s.handle_packet(&upd, PeerId(p), 1_000 + u64::from(p));
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sender_tick,
    bench_receiver_paths,
    bench_membership,
    bench_feedback_processing
);
criterion_main!(benches);
