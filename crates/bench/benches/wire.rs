//! Micro-benchmarks of the wire format: header and packet
//! encode/decode, and the Internet checksum — the per-packet costs the
//! paper models as (10 + 0.025·l) µs of protocol processing.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hrmc_wire::{Header, Packet, PacketType};

fn bench_header(c: &mut Criterion) {
    let header = Header::new(PacketType::Data, 7000, 7001, 123_456);
    let encoded = header.encode();
    c.bench_function("header/encode", |b| b.iter(|| black_box(header).encode()));
    c.bench_function("header/decode", |b| {
        b.iter(|| Header::decode(black_box(&encoded)).unwrap())
    });
}

fn bench_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet");
    for size in [64usize, 512, 1400] {
        let pkt = Packet::data(7000, 7001, 42, Bytes::from(vec![0xabu8; size]));
        let wire = pkt.encode();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_function(format!("encode/{size}B"), |b| {
            b.iter(|| black_box(&pkt).encode())
        });
        group.bench_function(format!("decode/{size}B"), |b| {
            b.iter(|| Packet::decode(black_box(&wire)).unwrap())
        });
    }
    group.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum");
    for size in [20usize, 1420] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| hrmc_wire::internet_checksum(black_box(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_header, bench_packet, bench_checksum);
criterion_main!(benches);
