//! Scheduler-efficiency benchmark: one fixed scalability scenario (64
//! mostly-idle receivers on a slow shared segment — the regime where
//! timer work, not packet work, dominates), timed end to end.
//!
//! Writes `BENCH_sim.json` at the repository root with wall-clock,
//! events popped from the `EventQueue`, and the peak heap length, so
//! future PRs have a perf baseline to compare against.
//!
//! ```sh
//! cargo bench -p hrmc-bench --bench sim           # full run + JSON
//! cargo bench -p hrmc-bench --bench sim -- --test   # one small smoke run
//! cargo bench -p hrmc-bench --bench sim -- --check  # regression gate
//! ```
//!
//! `--check` re-runs the full scenario once and compares the
//! *deterministic* scheduler-work counters (`events_popped`,
//! `engine_ticks`) against the committed `BENCH_sim.json`; more than 10%
//! regression on either exits nonzero. Wall-clock is reported but never
//! gated (CI machines vary); the work counters are exact on a fixed
//! seed, so any growth is a real scheduler regression, not noise.
//!
//! The run also times the sharded membership index directly at 1k / 10k
//! / 100k members (update / `all_have` / `lacking` in the sender's
//! MINBUF query mix) under a `membership` key. `--check` gates the
//! deterministic `members_scanned_per_lacking` counter two ways: against
//! the committed per-population pin (+10%), and for sub-linear growth
//! across the 1k → 100k sweep (the 100× population may cost at most
//! 12.5× the scan work; the shard aggregates hold it near 1×).
//!
//! The run also drives a live multi-session reactor micro-benchmark
//! (4 sender→receiver pairs over loopback multicast on one shared
//! reactor) and records its batched-syscall efficiency — syscalls per
//! packet moved and mean `recvmmsg` batch size — under a `reactor` key.
//! `--check` gates `syscalls_per_packet` inside a tolerance band around
//! the committed baseline's reactor ratio: up to 2× the pinned value
//! (with an absolute +0.05 floor so tiny baselines aren't impossible to
//! hold), and never at or above 1.0 — the one-syscall-per-datagram
//! floor that batched I/O must always beat. When the committed baseline
//! has no reactor section (it was written where multicast was
//! unavailable), only the absolute floor applies. Skipped (with a
//! notice) when this environment forbids multicast.
//!
//! Finally, a `datapath` row compares the pluggable syscall backends
//! head-to-head: the same 2-pair transfer workload on a 2-shard
//! [`ReactorPool`] under epoll and (when built with `--features uring`
//! on a kernel that has io_uring) under io_uring, recording backend,
//! shard count, and syscalls per packet. The `--check` gate here is
//! *self-relative*: the uring row must come in strictly below the epoll
//! row measured in the same process — no committed pin, since absolute
//! loopback ratios vary across machines. Either leg that cannot run is
//! skipped with a notice, never failed.

use hrmc_core::membership::Membership;
use hrmc_core::{PeerId, ProtocolConfig};
use hrmc_net::{DatapathKind, McastSocket, Reactor, ReactorConfig, ReactorPool, Session};
use hrmc_sim::{SimParams, SimReport, Simulation, TopologyBuilder};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::{Duration, Instant};

/// The fixed scalability scenario: 64 receivers, 1 Mbps shared LAN,
/// 0.5% loss, 200 KB transfer. At ~80 packets/s the population is idle
/// most of the simulated time, which is exactly what the paper's larger
/// fan-outs look like between loss events.
fn scalability_params(receivers: usize, transfer: u64) -> SimParams {
    let bandwidth = 1_000_000;
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = ((bandwidth as f64 / 8.0 * 0.95) as u64).max(protocol.min_rate);
    let topology = TopologyBuilder::new().lan(receivers, bandwidth, 0.005);
    let mut p = SimParams::new(protocol, topology, transfer);
    p.horizon_us = 1_800 * 1_000_000;
    p
}

fn run_once(receivers: usize, transfer: u64) -> (SimReport, f64) {
    let t0 = Instant::now();
    let report = Simulation::new(scalability_params(receivers, transfer)).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(report.completed, "scalability scenario must complete");
    assert!(report.all_intact(), "scalability scenario must be reliable");
    (report, wall_ms)
}

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn multicast_available(port: u16) -> bool {
    let g = SocketAddrV4::new(Ipv4Addr::new(239, 255, 95, 1), port);
    let Ok(rx) = McastSocket::receiver(g, LO) else {
        return false;
    };
    let Ok(tx) = McastSocket::sender(g, LO) else {
        return false;
    };
    let _ = rx.set_read_timeout(Duration::from_millis(500));
    if tx.send_multicast(b"probe").is_err() {
        return false;
    }
    let mut buf = [0u8; 16];
    rx.recv_from(&mut buf).is_ok()
}

/// Batched-syscall efficiency of the shared reactor under live load.
struct ReactorBench {
    wall_ms: f64,
    packets: u64,
    syscalls_per_packet: f64,
    rx_batch_mean: f64,
    rx_batch_max: u64,
}

/// Run `pairs` concurrent sender→receiver transfers of `payload` bytes
/// each on ONE private reactor over loopback multicast, and read the
/// batching gauges off its stats. `None` when multicast is unavailable.
fn reactor_microbench(pairs: usize, payload: usize) -> Option<ReactorBench> {
    if !multicast_available(49000) {
        return None;
    }
    let reactor = Reactor::new().expect("reactor");
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 16 * 1024 * 1024;
    protocol.initial_rtt = 2_000;
    protocol.anonymous_release_hold = 500_000;
    let t0 = Instant::now();
    let groups: Vec<SocketAddrV4> = (0..pairs as u16)
        .map(|i| SocketAddrV4::new(Ipv4Addr::new(239, 255, 95, 10 + i as u8), 49010 + i))
        .collect();
    let receivers: Vec<_> = groups
        .iter()
        .map(|&g| {
            Session::receiver(g)
                .interface(LO)
                .config(protocol.clone())
                .reactor(reactor.clone())
                .bind()
                .expect("join receiver")
        })
        .collect();
    let senders: Vec<_> = groups
        .iter()
        .map(|&g| {
            Session::sender(g)
                .interface(LO)
                .config(protocol.clone())
                .reactor(reactor.clone())
                .bind()
                .expect("bind sender")
        })
        .collect();
    let data: Vec<u8> = (0..payload).map(|i| (i * 31 % 251) as u8).collect();
    let readers: Vec<_> = receivers
        .into_iter()
        .map(|r| {
            let len = data.len();
            std::thread::spawn(move || {
                let mut got = 0usize;
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match r.recv(&mut buf, Duration::from_secs(60)) {
                        Ok(0) => break,
                        Ok(n) => got += n,
                        Err(e) => panic!("bench recv failed: {e}"),
                    }
                }
                assert_eq!(got, len, "bench transfer truncated");
            })
        })
        .collect();
    let writers: Vec<_> = senders
        .into_iter()
        .map(|s| {
            let data = data.clone();
            std::thread::spawn(move || {
                s.send(&data).expect("bench send");
                s.close_and_wait(Duration::from_secs(120))
                    .expect("bench close");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("bench writer panicked");
    }
    for r in readers {
        r.join().expect("bench reader panicked");
    }
    let st = reactor.stats();
    Some(ReactorBench {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        packets: st.packets_rx + st.packets_tx,
        syscalls_per_packet: st.syscalls_per_packet(),
        rx_batch_mean: st.rx_batch_mean,
        rx_batch_max: st.rx_batch_max,
    })
}

/// One datapath-backend row: the same live transfer workload as the
/// reactor micro-bench, but on a sharded pool with an explicitly chosen
/// syscall backend, so epoll and io_uring are directly comparable.
struct DatapathBench {
    backend: &'static str,
    shards: usize,
    wall_ms: f64,
    packets: u64,
    syscalls_per_packet: f64,
}

/// Run `pairs` transfers of `payload` bytes on a fresh 2-shard pool
/// using `kind`, and read the aggregated stats. `None` when multicast
/// is unavailable, or when `kind` was requested but the build/kernel
/// fell back to a different backend (the caller reports the skip).
fn datapath_microbench(
    kind: DatapathKind,
    pairs: usize,
    payload: usize,
    group_octet: u8,
    port_base: u16,
) -> Option<DatapathBench> {
    if !multicast_available(49001) {
        return None;
    }
    let pool = ReactorPool::with_config(ReactorConfig {
        datapath: kind,
        shards: 2,
        ..ReactorConfig::default()
    })
    .expect("pool");
    let agg = pool.aggregate();
    if agg.backend != kind.to_string() {
        return None; // requested backend unavailable; fell back
    }
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = 16 * 1024 * 1024;
    protocol.initial_rtt = 2_000;
    protocol.anonymous_release_hold = 500_000;
    let t0 = Instant::now();
    let groups: Vec<SocketAddrV4> = (0..pairs as u16)
        .map(|i| {
            SocketAddrV4::new(
                Ipv4Addr::new(239, 255, 95, group_octet + i as u8),
                port_base + i,
            )
        })
        .collect();
    let data: Vec<u8> = (0..payload).map(|i| (i * 31 % 251) as u8).collect();
    let workers: Vec<_> = groups
        .iter()
        .map(|&g| {
            let pool = pool.clone();
            let data = data.clone();
            let protocol = protocol.clone();
            std::thread::spawn(move || {
                let rx = Session::receiver(g)
                    .interface(LO)
                    .config(protocol.clone())
                    .reactor_pool(&pool)
                    .bind()
                    .expect("join receiver");
                let tx = Session::sender(g)
                    .interface(LO)
                    .config(protocol)
                    .reactor_pool(&pool)
                    .bind()
                    .expect("bind sender");
                tx.send(&data).expect("bench send");
                tx.close();
                let mut got = 0usize;
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match rx.recv(&mut buf, Duration::from_secs(60)) {
                        Ok(0) => break,
                        Ok(n) => got += n,
                        Err(e) => panic!("bench recv failed: {e}"),
                    }
                }
                assert_eq!(got, data.len(), "bench transfer truncated");
                tx.close_and_wait(Duration::from_secs(120))
                    .expect("bench close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench worker panicked");
    }
    let st = pool.aggregate();
    Some(DatapathBench {
        backend: if kind == DatapathKind::Uring {
            "uring"
        } else {
            "epoll"
        },
        shards: pool.shards(),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        packets: st.packets_rx + st.packets_tx,
        syscalls_per_packet: st.syscalls_per_packet(),
    })
}

fn datapath_json(b: &DatapathBench) -> serde_json::Value {
    serde_json::json!({
        "backend": b.backend,
        "shards": b.shards,
        "wall_ms": b.wall_ms,
        "packets": b.packets,
        "syscalls_per_packet": b.syscalls_per_packet,
    })
}

fn print_datapath_row(b: &DatapathBench) {
    println!(
        "bench: datapath/{}  shards={}  wall={:.1} ms  packets={}  syscalls_per_packet={:.3}",
        b.backend, b.shards, b.wall_ms, b.packets, b.syscalls_per_packet
    );
}

/// One membership micro-bench row: per-operation wall time (noisy,
/// informational) and the deterministic scan-cost counters the `--check`
/// gate rides on.
struct MembershipBench {
    n: usize,
    update_ns: f64,
    all_have_ns: f64,
    lacking_ns: f64,
    /// Members touched per `lacking` descent — the release gate's probe
    /// fan-out cost. Deterministic for the fixed workload; flat in `n`
    /// when the shard aggregates work (only laggard shards are entered).
    members_scanned_per_lacking: f64,
    heap_lazy_pops: u64,
    shards: usize,
}

/// The protocol-shaped hot loop at population `n`: the group marches its
/// `next_expected` forward one shard span per round (crossing the u32
/// wrap mid-march) while one laggard trails a round behind — the MINBUF
/// regime, where the release gate fails on a small trailing set, `lacking`
/// names it, the laggard catches up, and the gate passes. The crowd's
/// shard is skipped by its aggregate bound, so the descent cost tracks
/// the laggard count, not the population.
fn membership_microbench(n: usize) -> MembershipBench {
    const ROUNDS: u32 = 64;
    const STRIDE: u32 = 64; // one full shard span per round
    let base: u32 = u32::MAX - ROUNDS * STRIDE / 2; // cross the wrap mid-march
    let mut m = Membership::new();
    for p in 0..n {
        m.add(PeerId(p as u32), base, p as u64);
    }
    let mut now = n as u64;
    let (mut t_update, mut t_all_have, mut t_lacking) = (0u128, 0u128, 0u128);
    let (mut updates, mut lackings) = (0u64, 0u64);
    let mut scratch: Vec<PeerId> = Vec::new();
    for r in 1..=ROUNDS {
        let front = base.wrapping_add(r * STRIDE);
        let t0 = Instant::now();
        for p in 1..n {
            now += 1;
            m.update(PeerId(p as u32), front.wrapping_add(1), now);
            updates += 1;
        }
        t_update += t0.elapsed().as_nanos();
        let t0 = Instant::now();
        let complete = m.all_have(front);
        t_all_have += t0.elapsed().as_nanos();
        assert!(!complete, "laggard must hold the gate");
        let t0 = Instant::now();
        m.lacking_into(front, &mut scratch);
        t_lacking += t0.elapsed().as_nanos();
        lackings += 1;
        assert_eq!(scratch.len(), 1, "exactly the laggard lacks");
        now += 1;
        m.update(PeerId(0), front.wrapping_add(1), now);
        updates += 1;
        let t0 = Instant::now();
        let complete = m.all_have(front);
        t_all_have += t0.elapsed().as_nanos();
        assert!(complete, "caught-up group must release");
    }
    let costs = m.costs();
    MembershipBench {
        n,
        update_ns: t_update as f64 / updates as f64,
        all_have_ns: t_all_have as f64 / (2 * ROUNDS) as f64,
        lacking_ns: t_lacking as f64 / lackings as f64,
        members_scanned_per_lacking: costs.members_scanned as f64 / lackings as f64,
        heap_lazy_pops: costs.heap_lazy_pops,
        shards: m.shard_count(),
    }
}

const MEMBERSHIP_POPULATIONS: [usize; 3] = [1_000, 10_000, 100_000];

fn print_membership_row(b: &MembershipBench) {
    println!(
        "bench: membership/{}m  update={:.0} ns  all_have={:.0} ns  lacking={:.0} ns  \
         scanned/lacking={:.1}  heap_lazy_pops={}  shards={}",
        b.n,
        b.update_ns,
        b.all_have_ns,
        b.lacking_ns,
        b.members_scanned_per_lacking,
        b.heap_lazy_pops,
        b.shards
    );
}

/// Baseline path: the committed `BENCH_sim.json` at the repo root.
fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json")
}

/// The `--check` regression gate: compare this build's deterministic
/// scheduler-work counters against the committed baseline.
fn check_against_baseline() -> ! {
    let (report, wall_ms) = run_once(64, 200_000);
    let ticks_total: u64 = report.host_ticks.iter().sum();
    let body = std::fs::read_to_string(baseline_path())
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path()));
    let baseline = serde_json::from_str(&body).expect("BENCH_sim.json must be valid JSON");
    let base = |key: &str| -> u64 {
        baseline
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("BENCH_sim.json has no numeric `{key}`"))
    };
    let mut failed = false;
    for (name, current, pinned) in [
        ("events_popped", report.events_popped, base("events_popped")),
        ("engine_ticks", ticks_total, base("engine_ticks")),
    ] {
        // >10% growth over the committed baseline fails the gate.
        let limit = pinned + pinned.div_ceil(10);
        let verdict = if current > limit { "REGRESSED" } else { "ok" };
        failed |= current > limit;
        println!(
            "bench-check: {name}  current={current}  baseline={pinned}  \
             limit={limit}  {verdict}"
        );
    }
    println!("bench-check: wall={wall_ms:.1} ms (informational, not gated)");
    // Membership gate: the release-gate scan cost must stay flat (well
    // sub-linear) as the population grows 1k -> 100k, and must not grow
    // past the committed per-population pin by more than 10%. Both
    // checks ride on the deterministic `members_scanned` counter — wall
    // times are printed but never gated.
    let rows: Vec<MembershipBench> = MEMBERSHIP_POPULATIONS
        .iter()
        .map(|&n| membership_microbench(n))
        .collect();
    for b in &rows {
        print_membership_row(b);
        let pinned = baseline
            .get("membership")
            .and_then(|v| v.get(&b.n.to_string()))
            .and_then(|v| v.get("members_scanned_per_lacking"))
            .and_then(|v| v.as_f64());
        if let Some(p) = pinned {
            let limit = p * 1.1 + 0.5;
            let verdict = if b.members_scanned_per_lacking > limit {
                "REGRESSED"
            } else {
                "ok"
            };
            failed |= b.members_scanned_per_lacking > limit;
            println!(
                "bench-check: membership/{}m scanned/lacking={:.1}  baseline={p:.1}  \
                 limit={limit:.1}  {verdict}",
                b.n, b.members_scanned_per_lacking
            );
        } else {
            println!(
                "bench-check: membership/{}m has no committed pin (re-baseline to add one)",
                b.n
            );
        }
    }
    let (small, large) = (&rows[0], &rows[rows.len() - 1]);
    let ratio = large.members_scanned_per_lacking / small.members_scanned_per_lacking.max(1.0);
    let growth = large.n as f64 / small.n as f64;
    let sublinear = ratio <= growth / 8.0;
    failed |= !sublinear;
    println!(
        "bench-check: membership scan growth {}m -> {}m = {ratio:.2}x \
         (population grew {growth:.0}x; limit {:.1}x)  {}",
        small.n,
        large.n,
        growth / 8.0,
        if sublinear { "ok" } else { "REGRESSED" }
    );
    match reactor_microbench(4, 150_000) {
        Some(r) => {
            // Tolerance band around the committed reactor baseline:
            // loopback batching varies run to run, so allow up to 2×
            // the pinned ratio (with a +0.05 absolute floor so a very
            // tight baseline stays holdable) — but never at or above
            // 1.0, the one-syscall-per-datagram floor below which the
            // reactor has degenerated to unbatched I/O.
            let pinned = baseline
                .get("reactor")
                .filter(|v| !v.is_null())
                .and_then(|v| v.get("syscalls_per_packet"))
                .and_then(|v| v.as_f64());
            let limit = match pinned {
                Some(b) => (b * 2.0).max(b + 0.05).min(1.0),
                None => 1.0,
            };
            let verdict = if r.syscalls_per_packet < limit {
                "ok"
            } else {
                "REGRESSED"
            };
            failed |= r.syscalls_per_packet >= limit;
            println!(
                "bench-check: reactor syscalls_per_packet={:.3}  baseline={}  \
                 limit=<{limit:.3}  rx_batch_mean={:.2}  rx_batch_max={}  packets={}  \
                 wall={:.1} ms  {verdict}",
                r.syscalls_per_packet,
                pinned.map_or_else(|| "none".to_string(), |b| format!("{b:.3}")),
                r.rx_batch_mean,
                r.rx_batch_max,
                r.packets,
                r.wall_ms
            );
        }
        None => println!("bench-check: reactor micro-bench skipped (no multicast loopback)"),
    }
    // Datapath gate: self-relative, never against a committed pin
    // (loopback throughput varies too much across machines). When the
    // io_uring backend actually runs, its syscalls-per-packet must be
    // strictly below the epoll row measured in the same process on the
    // same workload — the entire point of the completion-ring backend.
    match datapath_microbench(DatapathKind::Epoll, 2, 100_000, 30, 49030) {
        Some(epoll) => {
            print_datapath_row(&epoll);
            match datapath_microbench(DatapathKind::Uring, 2, 100_000, 40, 49040) {
                Some(uring) => {
                    print_datapath_row(&uring);
                    let ok = uring.syscalls_per_packet < epoll.syscalls_per_packet;
                    failed |= !ok;
                    println!(
                        "bench-check: datapath uring syscalls_per_packet={:.3}  \
                         epoll={:.3}  limit=<epoll  {}",
                        uring.syscalls_per_packet,
                        epoll.syscalls_per_packet,
                        if ok { "ok" } else { "REGRESSED" }
                    );
                }
                None => println!(
                    "bench-check: datapath uring leg skipped (build without \
                     --features uring, or kernel lacks io_uring)"
                ),
            }
        }
        None => println!("bench-check: datapath rows skipped (no multicast loopback)"),
    }
    if failed {
        eprintln!(
            "bench-check: perf regressed vs BENCH_sim.json / the batching floor; \
             fix the regression or deliberately re-baseline with \
             `cargo bench -p hrmc-bench --bench sim`"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check_against_baseline();
    }
    let smoke = std::env::args().any(|a| a == "--test");
    let (receivers, transfer, iters) = if smoke {
        (8, 50_000, 1)
    } else {
        (64, 200_000, 3)
    };

    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..iters {
        let (report, wall_ms) = run_once(receivers, transfer);
        if best.as_ref().is_none_or(|(_, w)| wall_ms < *w) {
            best = Some((report, wall_ms));
        }
    }
    let (report, wall_ms) = best.expect("at least one iteration");
    let ticks_total: u64 = report.host_ticks.iter().sum();
    println!(
        "bench: sim/scalability-{receivers}r  wall={wall_ms:.1} ms  events_popped={}  \
         peak_queue_len={}  engine_ticks={}  sim_elapsed={} us",
        report.events_popped, report.peak_queue_len, ticks_total, report.elapsed_us
    );

    let membership: Vec<MembershipBench> = if smoke {
        vec![membership_microbench(1_000)]
    } else {
        MEMBERSHIP_POPULATIONS
            .iter()
            .map(|&n| membership_microbench(n))
            .collect()
    };
    for b in &membership {
        print_membership_row(b);
    }

    let reactor = reactor_microbench(
        if smoke { 2 } else { 4 },
        if smoke { 30_000 } else { 150_000 },
    );
    match &reactor {
        Some(r) => println!(
            "bench: reactor/{}p  wall={:.1} ms  packets={}  syscalls_per_packet={:.3}  \
             rx_batch_mean={:.2}  rx_batch_max={}",
            if smoke { 2 } else { 4 },
            r.wall_ms,
            r.packets,
            r.syscalls_per_packet,
            r.rx_batch_mean,
            r.rx_batch_max
        ),
        None => println!("bench: reactor micro-bench skipped (no multicast loopback)"),
    }

    let dp_payload = if smoke { 30_000 } else { 100_000 };
    let dp_epoll = datapath_microbench(DatapathKind::Epoll, 2, dp_payload, 30, 49030);
    let dp_uring = datapath_microbench(DatapathKind::Uring, 2, dp_payload, 40, 49040);
    match &dp_epoll {
        Some(b) => print_datapath_row(b),
        None => println!("bench: datapath/epoll skipped (no multicast loopback)"),
    }
    match &dp_uring {
        Some(b) => print_datapath_row(b),
        None => println!(
            "bench: datapath/uring skipped (build without --features uring, \
             kernel lacks io_uring, or no multicast loopback)"
        ),
    }

    if smoke {
        return; // CI smoke: no baseline file
    }
    let mut membership_json = serde_json::Map::new();
    for b in &membership {
        membership_json.insert(
            b.n.to_string(),
            serde_json::json!({
                "update_ns": b.update_ns,
                "all_have_ns": b.all_have_ns,
                "lacking_ns": b.lacking_ns,
                "members_scanned_per_lacking": b.members_scanned_per_lacking,
                "heap_lazy_pops": b.heap_lazy_pops,
                "shards": b.shards,
            }),
        );
    }
    let membership_json = serde_json::Value::Object(membership_json);
    let out = serde_json::json!({
        "scenario": {
            "receivers": receivers,
            "bandwidth_bps": 1_000_000,
            "loss": 0.005,
            "transfer_bytes": transfer,
            "seed": 1,
        },
        "wall_ms": wall_ms,
        "events_popped": report.events_popped,
        "peak_queue_len": report.peak_queue_len,
        "engine_ticks": ticks_total,
        "sim_elapsed_us": report.elapsed_us,
        "throughput_mbps": report.throughput_mbps,
        "membership": membership_json,
        "reactor": reactor.as_ref().map(|r| serde_json::json!({
            "pairs": 4,
            "transfer_bytes": 150_000,
            "wall_ms": r.wall_ms,
            "packets": r.packets,
            "syscalls_per_packet": r.syscalls_per_packet,
            "rx_batch_mean": r.rx_batch_mean,
            "rx_batch_max": r.rx_batch_max,
        })),
        "datapath": {
            "pairs": 2,
            "transfer_bytes": dp_payload,
            "epoll": dp_epoll.as_ref().map(datapath_json),
            "uring": dp_uring.as_ref().map(datapath_json),
        },
    });
    let path = baseline_path();
    let body = serde_json::to_string_pretty(&out).expect("serialize BENCH_sim.json");
    std::fs::write(path, body + "\n").expect("write BENCH_sim.json");
    println!("bench: wrote {path}");
}
