//! Scheduler-efficiency benchmark: one fixed scalability scenario (64
//! mostly-idle receivers on a slow shared segment — the regime where
//! timer work, not packet work, dominates), timed end to end.
//!
//! Writes `BENCH_sim.json` at the repository root with wall-clock,
//! events popped from the `EventQueue`, and the peak heap length, so
//! future PRs have a perf baseline to compare against.
//!
//! ```sh
//! cargo bench -p hrmc-bench --bench sim           # full run + JSON
//! cargo bench -p hrmc-bench --bench sim -- --test   # one small smoke run
//! cargo bench -p hrmc-bench --bench sim -- --check  # regression gate
//! ```
//!
//! `--check` re-runs the full scenario once and compares the
//! *deterministic* scheduler-work counters (`events_popped`,
//! `engine_ticks`) against the committed `BENCH_sim.json`; more than 10%
//! regression on either exits nonzero. Wall-clock is reported but never
//! gated (CI machines vary); the work counters are exact on a fixed
//! seed, so any growth is a real scheduler regression, not noise.

use hrmc_core::ProtocolConfig;
use hrmc_sim::{SimParams, SimReport, Simulation, TopologyBuilder};
use std::time::Instant;

/// The fixed scalability scenario: 64 receivers, 1 Mbps shared LAN,
/// 0.5% loss, 200 KB transfer. At ~80 packets/s the population is idle
/// most of the simulated time, which is exactly what the paper's larger
/// fan-outs look like between loss events.
fn scalability_params(receivers: usize, transfer: u64) -> SimParams {
    let bandwidth = 1_000_000;
    let mut protocol = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    protocol.max_rate = ((bandwidth as f64 / 8.0 * 0.95) as u64).max(protocol.min_rate);
    let topology = TopologyBuilder::new().lan(receivers, bandwidth, 0.005);
    let mut p = SimParams::new(protocol, topology, transfer);
    p.horizon_us = 1_800 * 1_000_000;
    p
}

fn run_once(receivers: usize, transfer: u64) -> (SimReport, f64) {
    let t0 = Instant::now();
    let report = Simulation::new(scalability_params(receivers, transfer)).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(report.completed, "scalability scenario must complete");
    assert!(report.all_intact(), "scalability scenario must be reliable");
    (report, wall_ms)
}

/// Baseline path: the committed `BENCH_sim.json` at the repo root.
fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json")
}

/// The `--check` regression gate: compare this build's deterministic
/// scheduler-work counters against the committed baseline.
fn check_against_baseline() -> ! {
    let (report, wall_ms) = run_once(64, 200_000);
    let ticks_total: u64 = report.host_ticks.iter().sum();
    let body = std::fs::read_to_string(baseline_path())
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path()));
    let baseline = serde_json::from_str(&body).expect("BENCH_sim.json must be valid JSON");
    let base = |key: &str| -> u64 {
        baseline
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("BENCH_sim.json has no numeric `{key}`"))
    };
    let mut failed = false;
    for (name, current, pinned) in [
        ("events_popped", report.events_popped, base("events_popped")),
        ("engine_ticks", ticks_total, base("engine_ticks")),
    ] {
        // >10% growth over the committed baseline fails the gate.
        let limit = pinned + pinned.div_ceil(10);
        let verdict = if current > limit { "REGRESSED" } else { "ok" };
        failed |= current > limit;
        println!(
            "bench-check: {name}  current={current}  baseline={pinned}  \
             limit={limit}  {verdict}"
        );
    }
    println!("bench-check: wall={wall_ms:.1} ms (informational, not gated)");
    if failed {
        eprintln!(
            "bench-check: scheduler work regressed >10% vs BENCH_sim.json; \
             fix the regression or deliberately re-baseline with \
             `cargo bench -p hrmc-bench --bench sim`"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check_against_baseline();
    }
    let smoke = std::env::args().any(|a| a == "--test");
    let (receivers, transfer, iters) = if smoke {
        (8, 50_000, 1)
    } else {
        (64, 200_000, 3)
    };

    let mut best: Option<(SimReport, f64)> = None;
    for _ in 0..iters {
        let (report, wall_ms) = run_once(receivers, transfer);
        if best.as_ref().is_none_or(|(_, w)| wall_ms < *w) {
            best = Some((report, wall_ms));
        }
    }
    let (report, wall_ms) = best.expect("at least one iteration");
    let ticks_total: u64 = report.host_ticks.iter().sum();
    println!(
        "bench: sim/scalability-{receivers}r  wall={wall_ms:.1} ms  events_popped={}  \
         peak_queue_len={}  engine_ticks={}  sim_elapsed={} us",
        report.events_popped, report.peak_queue_len, ticks_total, report.elapsed_us
    );

    if smoke {
        return; // CI smoke: no baseline file
    }
    let out = serde_json::json!({
        "scenario": {
            "receivers": receivers,
            "bandwidth_bps": 1_000_000,
            "loss": 0.005,
            "transfer_bytes": transfer,
            "seed": 1,
        },
        "wall_ms": wall_ms,
        "events_popped": report.events_popped,
        "peak_queue_len": report.peak_queue_len,
        "engine_ticks": ticks_total,
        "sim_elapsed_us": report.elapsed_us,
        "throughput_mbps": report.throughput_mbps,
    });
    let path = baseline_path();
    let body = serde_json::to_string_pretty(&out).expect("serialize BENCH_sim.json");
    std::fs::write(path, body + "\n").expect("write BENCH_sim.json");
    println!("bench: wrote {path}");
}
