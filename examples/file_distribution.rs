//! Bulk software distribution — the paper's motivating "bulk
//! distribution of software upgrades" workload: one sender pushes a
//! 40 MB image to a mixed receiver population (a campus LAN group plus a
//! remote WAN site), disk-to-disk, and we compare H-RMC against the RMC
//! baseline.
//!
//! ```sh
//! cargo run --release --example file_distribution
//! ```

use hrmc::app::Scenario;
use hrmc::sim::{CharacteristicGroup, GroupSpec};

fn main() {
    let specs = vec![
        GroupSpec {
            group: CharacteristicGroup::A,
            receivers: 6,
        }, // campus
        GroupSpec {
            group: CharacteristicGroup::C,
            receivers: 2,
        }, // remote
    ];
    let image_bytes = 40_000_000;

    println!(
        "distributing a {} MB image to 6 campus + 2 remote receivers\n",
        image_bytes / 1_000_000
    );

    for (label, scenario) in [
        (
            "H-RMC",
            Scenario::groups(specs.clone(), 10_000_000, 512 * 1024, image_bytes).disk_to_disk(),
        ),
        (
            "RMC (pure NAK baseline)",
            Scenario::groups(specs.clone(), 10_000_000, 512 * 1024, image_bytes)
                .disk_to_disk()
                .rmc(),
        ),
    ] {
        let report = scenario.run();
        println!("{label}:");
        println!("  completed        : {}", report.completed);
        println!("  all intact       : {}", report.all_intact());
        println!("  throughput       : {:.2} Mbps", report.throughput_mbps);
        println!("  NAK_ERRs         : {}", report.sender.nak_errs_sent);
        println!("  unsafe releases  : {}", report.sender.unsafe_releases);
        println!(
            "  info-complete    : {:.1}% of buffer releases",
            report.complete_info_ratio * 100.0
        );
        println!();
    }

    println!(
        "The RMC baseline may release buffers before every receiver has the\n\
         data (unsafe releases) and must answer late NAKs with NAK_ERR; the\n\
         hybrid machinery (updates + probes) removes both failure modes."
    );
}
