//! Quickstart: run one reliable multicast transfer on the simulated
//! 10 Mbps Ethernet of the paper's testbed and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hrmc::app::Scenario;

fn main() {
    // Three receivers, 256 KiB kernel buffers, a 5 MB transfer — the
    // shape of one cell of the paper's Figure 10.
    let scenario = Scenario::lan(3, 10_000_000, 256 * 1024, 5_000_000);
    println!("running: {}", scenario.name);
    let report = scenario.run();

    assert!(report.completed, "transfer did not complete");
    assert!(report.all_intact(), "a receiver's stream was corrupted");

    println!("transfer complete:");
    println!("  bytes           : {}", report.transfer_bytes);
    println!(
        "  elapsed         : {:.2} s",
        report.elapsed_us as f64 / 1e6
    );
    println!("  throughput      : {:.2} Mbps", report.throughput_mbps);
    println!("  retransmissions : {}", report.sender.retransmissions);
    println!("  NAKs at sender  : {}", report.sender.naks_received);
    println!(
        "  rate requests   : {}",
        report.sender.rate_requests_received
    );
    println!("  updates         : {}", report.sender.updates_received);
    println!("  probes sent     : {}", report.sender.probes_sent);
    println!(
        "  info-complete   : {:.1}% of buffer releases",
        report.complete_info_ratio * 100.0
    );
    for (i, r) in report.receivers.iter().enumerate() {
        println!(
            "  receiver {i}: {} bytes, done at {:.2} s, intact = {}",
            r.bytes,
            r.completed_at.unwrap_or(0) as f64 / 1e6,
            r.intact
        );
    }
}
