//! Live reliable multicast over real UDP sockets on the loopback
//! interface: one sender, three receivers (all in this process, every
//! session driven by the one shared reactor thread), one reliable
//! stream.
//!
//! ```sh
//! cargo run --release --example live_multicast
//! ```

use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

use hrmc::net::Session;
use hrmc::ProtocolConfig;

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

fn config() -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(256 * 1024);
    c.max_rate = 20 * 1024 * 1024; // stay under the kernel UDP buffers
    c.initial_rtt = 2_000; // loopback RTTs are tiny
    c.anonymous_release_hold = 500_000;
    c
}

fn main() {
    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 42, 7), 47123);
    let payload: Vec<u8> = (0..2_000_000usize).map(|i| (i * 31 % 251) as u8).collect();

    println!(
        "group {group}: 1 sender, 3 receivers, {} bytes",
        payload.len()
    );

    // Receivers first ("the receiving application uses setsockopt to
    // join the multicast group").
    let receivers: Vec<_> = (0..3)
        .map(|i| {
            let r = Session::receiver(group)
                .interface(LO)
                .config(config())
                .bind()
                .unwrap_or_else(|e| panic!("receiver {i} failed to join: {e}"));
            println!("receiver {i} joined");
            r
        })
        .collect();

    let sender = Session::sender(group)
        .interface(LO)
        .config(config())
        .bind()
        .expect("sender bind");

    let readers: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let expect = payload.clone();
            std::thread::spawn(move || {
                let started = std::time::Instant::now();
                let mut got = Vec::with_capacity(expect.len());
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match r.recv(&mut buf, Duration::from_secs(60)) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) => panic!("receiver {i} recv failed: {e}"),
                    }
                }
                assert_eq!(got, expect, "receiver {i} stream corrupted");
                let stats = r.stats();
                println!(
                    "receiver {i}: {} bytes in {:.2} s (naks {}, updates {}, probes seen {})",
                    got.len(),
                    started.elapsed().as_secs_f64(),
                    stats.naks_sent,
                    stats.updates_sent,
                    stats.probes_received,
                );
            })
        })
        .collect();

    let started = std::time::Instant::now();
    sender.send(&payload).expect("send");
    let stats = sender
        .close_and_wait(Duration::from_secs(120))
        .expect("transfer must complete reliably");
    println!(
        "sender: done in {:.2} s — {} data packets, {} retransmissions, rtt {:.1} ms",
        started.elapsed().as_secs_f64(),
        stats.data_packets_sent,
        stats.retransmissions,
        sender.rtt() as f64 / 1000.0,
    );
    for t in readers {
        t.join().expect("reader panicked");
    }
    println!("all receivers verified the stream byte-for-byte");
}
