//! Forward error correction on a wireless cell — the paper's future-work
//! item (4) in action. Two Gilbert–Elliott channels, with and without
//! XOR parity:
//!
//! * **fast fading** (1–2 packet fades): most blocks lose at most one
//!   packet, so single-parity FEC repairs locally and retransmissions
//!   fall;
//! * **slow fading** (~10 packet fades): whole blocks vanish and XOR
//!   parity cannot help — the NAK path carries the load, showing the
//!   extension's honest limits.
//!
//! ```sh
//! cargo run --release --example wireless_fec
//! ```

use hrmc::app::Scenario;
use hrmc::sim::LossModel;

fn run(model: LossModel, fec: Option<usize>, seeds: u64) -> (f64, u64, u64, u64) {
    let mut retrans = 0;
    let mut recoveries = 0;
    let mut naks = 0;
    let mut thr = 0.0;
    for seed in 1..=seeds {
        let mut s = Scenario::wireless(3, 10_000_000, 256 * 1024, 2_000_000, model).with_seed(seed);
        if let Some(k) = fec {
            s = s.with_fec(k);
        }
        let r = s.run();
        assert!(r.completed && r.all_intact(), "unreliable transfer!");
        retrans += r.sender.retransmissions;
        naks += r.sender.naks_received;
        recoveries += r
            .receivers
            .iter()
            .map(|x| x.stats.fec_recoveries)
            .sum::<u64>();
        thr += r.throughput_mbps;
    }
    (thr / seeds as f64, retrans, naks, recoveries)
}

fn main() {
    let seeds = 5;
    println!("3 receivers on a 10 Mbps wireless cell, 2 MB transfer, {seeds} seeds each\n");
    println!(
        "{:<26} {:>6} {:>12} {:>8} {:>8} {:>11}",
        "channel", "FEC", "throughput", "retrans", "NAKs", "recoveries"
    );
    for (name, model) in [
        ("fast fading (1-2 pkt)", LossModel::wireless_fast_fading()),
        ("slow fading (~10 pkt)", LossModel::wireless_default()),
    ] {
        for fec in [None, Some(8)] {
            let (thr, retrans, naks, recoveries) = run(model, fec, seeds);
            println!(
                "{:<26} {:>6} {:>7.2} Mbps {:>8} {:>8} {:>11}",
                name,
                fec.map(|k| format!("k={k}"))
                    .unwrap_or_else(|| "off".into()),
                thr,
                retrans,
                naks,
                recoveries,
            );
        }
    }
    println!(
        "\nSingle-parity XOR repairs isolated losses without a NAK round trip\n\
         (fast fading: retransmissions drop, recoveries appear), but long\n\
         fades lose several packets per block and fall back to NAK recovery —\n\
         reliability holds either way."
    );
}
