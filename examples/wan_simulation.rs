//! Wide-area behaviour — the paper's §5.2 simulation study in
//! miniature: sweep the five test cases of Figure 14(b) over a 10 Mbps
//! network and watch H-RMC adapt to the least capable receiver.
//!
//! ```sh
//! cargo run --release --example wan_simulation
//! ```

use hrmc::app::Scenario;
use hrmc::sim::topology::test_case;

fn main() {
    let receivers = 10;
    let buffer = 512 * 1024;
    let transfer = 5_000_000;

    println!(
        "Tests 1-5 (Figure 14(b)): {receivers} receivers, {}K buffers, {} MB transfer, 10 Mbps\n",
        buffer / 1024,
        transfer / 1_000_000
    );
    println!(
        "{:<7} {:<26} {:>12} {:>8} {:>8} {:>8}",
        "test", "population", "throughput", "NAKs", "rate-rq", "probes"
    );

    for test in 1..=5 {
        let specs = test_case(test, receivers);
        let population: Vec<String> = specs
            .iter()
            .map(|s| format!("{}×{}", s.receivers, s.group.name))
            .collect();
        let report = Scenario::groups(specs, 10_000_000, buffer, transfer).run();
        assert!(report.completed && report.all_intact());
        println!(
            "{:<7} {:<26} {:>9.2} Mbps {:>8} {:>8} {:>8}",
            format!("Test {test}"),
            population.join(" + "),
            report.throughput_mbps,
            report.sender.naks_received,
            report.sender.rate_requests_received,
            report.sender.probes_sent,
        );
    }

    println!(
        "\nExpected shape (paper Figure 15): Test 1 (all local) fastest, Test 3\n\
         (all wide-area) slowest, and the mixed Tests 4/5 near the wide-area\n\
         result — the sender adapts to the least capable receiver."
    );
}
