//! Cross-crate integration tests exercising the public façade: the same
//! protocol engines under the simulator and under real sockets, the
//! RMC-vs-H-RMC contrast, and the experiment-harness plumbing.

use hrmc::app::Scenario;
use hrmc::sim::{topology::test_case, CharacteristicGroup, GroupSpec};
use hrmc::ReliabilityMode;

#[test]
fn facade_reexports_are_coherent() {
    // The façade's types are the crates' types (compile-time check by
    // usage; a mismatch would fail to build).
    let config: hrmc::ProtocolConfig = hrmc::core::ProtocolConfig::hrmc();
    assert_eq!(config.mode, ReliabilityMode::Hybrid);
    let pkt = hrmc::Packet::control(hrmc::PacketType::Keepalive, 1, 2, 3);
    assert_eq!(pkt.header.ptype.to_string(), "KEEPALIVE");
}

#[test]
fn simulated_transfer_end_to_end() {
    let report = Scenario::lan(2, 10_000_000, 256 * 1024, 400_000).run();
    assert!(report.completed);
    assert!(report.all_intact());
    assert_eq!(report.sender.nak_errs_sent, 0);
}

#[test]
fn hybrid_reliability_invariant_under_loss() {
    // Across several seeds and loss rates, Hybrid mode never releases
    // unconfirmed data and never answers NAK_ERR once receivers joined.
    for loss in [0.001, 0.01, 0.03] {
        for seed in 1..=3 {
            let report = Scenario::lan(3, 10_000_000, 128 * 1024, 250_000)
                .with_loss(loss)
                .with_seed(seed)
                .run();
            assert!(report.completed, "stalled at loss={loss} seed={seed}");
            assert!(report.all_intact(), "corrupt at loss={loss} seed={seed}");
            assert_eq!(report.sender.unsafe_releases, 0);
            assert_eq!(report.sender.nak_errs_sent, 0);
        }
    }
}

#[test]
fn rmc_baseline_contrasts_with_hybrid() {
    let base = Scenario::groups(
        vec![GroupSpec {
            group: CharacteristicGroup::A,
            receivers: 4,
        }],
        10_000_000,
        64 * 1024,
        300_000,
    );
    let hybrid = base.clone().run();
    let rmc = base.rmc().run();
    // Figure 3's contrast: updates give the hybrid sender (nearly)
    // complete information; the pure-NAK sender flies blind in a
    // low-loss network.
    assert!(hybrid.complete_info_ratio > rmc.complete_info_ratio);
    assert!(hybrid.complete_info_ratio > 0.9);
    // And the hybrid machinery is genuinely absent in RMC.
    assert_eq!(rmc.sender.probes_sent, 0);
    assert_eq!(rmc.sender.updates_received, 0);
}

#[test]
fn five_wan_tests_order_as_in_figure_15() {
    let run = |test: usize| {
        let r = Scenario::groups(test_case(test, 6), 10_000_000, 512 * 1024, 400_000).run();
        assert!(r.completed && r.all_intact(), "test {test} failed");
        r.throughput_mbps
    };
    let t1 = run(1);
    let t3 = run(3);
    let t5 = run(5);
    assert!(t1 > t3, "all-LAN must beat all-WAN: {t1:.2} vs {t3:.2}");
    assert!(
        (t5 - t3).abs() < (t1 - t3).abs(),
        "mixed 80%-WAN group must track the WAN result"
    );
}

#[test]
fn live_socket_transfer_matches_simulated_protocol() {
    use hrmc::net::{McastSocket, Session};
    use std::net::{Ipv4Addr, SocketAddrV4};
    use std::time::Duration;

    const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);
    let probe_group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 91, 1), 47201);
    // Skip when the environment forbids multicast.
    let ok = (|| {
        let rx = McastSocket::receiver(probe_group, LO).ok()?;
        let tx = McastSocket::sender(probe_group, LO).ok()?;
        rx.set_read_timeout(Duration::from_millis(500)).ok()?;
        tx.send_multicast(b"x").ok()?;
        let mut b = [0u8; 4];
        rx.recv_from(&mut b).ok()
    })()
    .is_some();
    if !ok {
        eprintln!("skipping: multicast loopback unavailable");
        return;
    }

    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 91, 2), 47202);
    let mut config = hrmc::ProtocolConfig::hrmc().with_buffer(128 * 1024);
    config.max_rate = 16 * 1024 * 1024;
    config.initial_rtt = 2_000;
    config.anonymous_release_hold = 300_000;

    let receiver = Session::receiver(group)
        .interface(LO)
        .config(config.clone())
        .bind()
        .expect("join");
    let sender = Session::sender(group)
        .interface(LO)
        .config(config)
        .bind()
        .expect("bind");
    let data: Vec<u8> = (0..100_000usize).map(|i| (i % 251) as u8).collect();
    sender.send(&data).expect("send");
    sender.close(); // queue the FIN so the recv loop can see end-of-stream

    let mut got = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        match receiver.recv(&mut buf, Duration::from_secs(20)) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("recv: {e}"),
        }
    }
    let stats = sender
        .close_and_wait(Duration::from_secs(30))
        .expect("close");
    assert_eq!(got, data);
    assert_eq!(stats.nak_errs_sent, 0);
}
