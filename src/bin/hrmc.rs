//! `hrmc` — reliable multicast file transfer over UDP, from the command
//! line. One sender, any number of receivers, one H-RMC session.
//!
//! ```sh
//! # On each receiving machine (or terminal):
//! hrmc recv out.bin --group 239.255.42.9:47500
//!
//! # Then on the sender:
//! hrmc send big.iso --group 239.255.42.9:47500 --wait-receivers 2
//!
//! # Single-machine smoke test over loopback (spawns 2 in-process receivers):
//! hrmc selftest
//!
//! # Post-mortem: diagnose any JSONL trace (stream, sim log, or flight dump)
//! hrmc analyze trace.jsonl
//! ```

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::Duration;

use hrmc::net::Session;
use hrmc::{
    JsonlObserver, MetricsObserver, MultiObserver, ProtocolConfig, ProtocolObserver, SharedRecorder,
};

struct Opts {
    group: SocketAddrV4,
    iface: Ipv4Addr,
    rate: u64,
    buffer: usize,
    wait_receivers: usize,
    fec: Option<usize>,
    trace: Option<String>,
    metrics: bool,
    flight: Option<String>,
    flight_capacity: usize,
    json: bool,
    telemetry: Option<SocketAddr>,
    sample_interval_ms: u64,
    telemetry_jsonl: Option<String>,
    health: bool,
    once: bool,
    refresh_ms: u64,
    datapath: hrmc::net::DatapathKind,
    reactor_threads: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            group: SocketAddrV4::new(Ipv4Addr::new(239, 255, 42, 9), 47500),
            iface: Ipv4Addr::new(127, 0, 0, 1),
            rate: 20 * 1024 * 1024,
            buffer: 512 * 1024,
            wait_receivers: 1,
            fec: None,
            trace: None,
            metrics: false,
            flight: None,
            flight_capacity: 4096,
            json: false,
            telemetry: None,
            sample_interval_ms: 500,
            telemetry_jsonl: None,
            health: false,
            once: false,
            refresh_ms: 1000,
            datapath: hrmc::net::DatapathKind::Epoll,
            reactor_threads: 1,
        }
    }
}

/// One trace file shared by every endpoint in this process (selftest
/// runs three). [`JsonlObserver`] emits each event as a single `write`
/// of one full line, so a mutex around the writer keeps lines atomic.
#[derive(Clone)]
struct SharedLog(std::sync::Arc<std::sync::Mutex<std::io::BufWriter<std::fs::File>>>);

impl Write for SharedLog {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().unwrap().flush()
    }
}

/// The observability stack requested by `--trace` / `--metrics` /
/// `--flight`: endpoints in this process share one JSONL file (each line
/// tagged with the endpoint's role via `"src"`), one metrics registry,
/// and — unlike the unbounded trace — a bounded per-endpoint flight
/// recorder whose surviving window is dumped on exit.
struct Obs {
    log: Option<SharedLog>,
    metrics: Option<MetricsObserver>,
    flight_path: Option<String>,
    flight_capacity: usize,
    recorders: std::sync::Mutex<Vec<SharedRecorder>>,
    /// The continuous-telemetry pipeline (`--telemetry <addr>`): a
    /// sampling thread plus an HTTP endpoint serving `/metrics`
    /// (Prometheus text) and `/json` — watch it live with `hrmc top`.
    telemetry: Option<hrmc::net::Telemetry>,
    /// The reactor pool behind `--datapath` / `--reactor-threads`;
    /// `None` means every session rides the default global reactor.
    pool: Option<hrmc::net::ReactorPool>,
}

impl Obs {
    fn open(opts: &Opts) -> Result<Obs, Box<dyn std::error::Error>> {
        let log = match &opts.trace {
            Some(path) => {
                let f = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
                Some(SharedLog(std::sync::Arc::new(std::sync::Mutex::new(
                    std::io::BufWriter::new(f),
                ))))
            }
            None => None,
        };
        let metrics = opts.metrics.then(MetricsObserver::new);
        let pool = if opts.reactor_threads > 1 || opts.datapath != hrmc::net::DatapathKind::Epoll {
            let pool = hrmc::net::ReactorPool::shared(opts.reactor_threads, opts.datapath)
                .map_err(|e| format!("cannot start the reactor pool: {e}"))?;
            // The probe may have fallen back (kernel without io_uring):
            // report what actually runs, not what was asked for.
            eprintln!(
                "datapath: {} backend, {} reactor thread(s)",
                pool.aggregate().backend,
                pool.shards()
            );
            Some(pool)
        } else {
            None
        };
        if opts.health && opts.telemetry.is_none() {
            return Err("--health requires --telemetry (the monitor rides the \
                        telemetry pipeline)"
                .into());
        }
        let telemetry = match opts.telemetry {
            Some(addr) => {
                let mut b = hrmc::net::Telemetry::builder()
                    .listen(addr)
                    .sample_interval(Duration::from_millis(opts.sample_interval_ms.max(10)));
                if let Some(pool) = &pool {
                    b = b.reactor_pool(pool);
                }
                if opts.health {
                    b = b.health(hrmc::HealthConfig::default());
                }
                if let Some(path) = &opts.telemetry_jsonl {
                    b = b
                        .jsonl_path(std::path::Path::new(path))
                        .map_err(|e| format!("cannot create telemetry sink {path}: {e}"))?;
                }
                let t = b
                    .start()
                    .map_err(|e| format!("cannot start telemetry endpoint on {addr}: {e}"))?;
                if let Some(bound) = t.local_addr() {
                    eprintln!(
                        "telemetry: serving /metrics{} and /json at http://{bound} \
                         (watch live: hrmc top {bound})",
                        if opts.health { ", /alerts" } else { "" }
                    );
                }
                Some(t)
            }
            None => None,
        };
        Ok(Obs {
            log,
            metrics,
            flight_path: opts.flight.clone(),
            flight_capacity: opts.flight_capacity,
            recorders: std::sync::Mutex::new(Vec::new()),
            telemetry,
            pool,
        })
    }

    /// Observer stack for one endpoint, or `None` when no observability
    /// flag was given (the engine then keeps its zero-cost no-op path).
    fn for_role(&self, role: &str) -> Option<Box<dyn ProtocolObserver>> {
        let mut stack = MultiObserver::new();
        let mut any = false;
        if let Some(log) = &self.log {
            stack.push(Box::new(JsonlObserver::new(log.clone()).with_label(role)));
            any = true;
        }
        if let Some(m) = &self.metrics {
            stack.push(Box::new(m.clone()));
            any = true;
        }
        if self.flight_path.is_some() {
            let rec = SharedRecorder::new(self.flight_capacity).with_label(role);
            self.recorders.lock().unwrap().push(rec.clone());
            stack.push(Box::new(rec));
            any = true;
        }
        if let Some(t) = &self.telemetry {
            stack.push(t.observer());
            any = true;
        }
        any.then(|| Box::new(stack) as Box<dyn ProtocolObserver>)
    }

    /// Flush the trace, dump flight-recorder windows, and print the
    /// metrics registry as JSON on stdout.
    fn finish(&self) {
        if let Some(log) = &self.log {
            let _ = log.0.lock().unwrap().flush();
        }
        let recorders = self.recorders.lock().unwrap();
        if let Some(path) = &self.flight_path {
            match std::fs::File::create(path) {
                Ok(f) => {
                    let mut w = std::io::BufWriter::new(f);
                    for rec in recorders.iter() {
                        let _ = w.write_all(rec.dump().as_bytes());
                    }
                    let _ = w.flush();
                    eprintln!("flight recorder window written to {path}");
                }
                Err(e) => eprintln!("cannot write flight recording {path}: {e}"),
            }
        }
        if let Some(t) = &self.telemetry {
            // Capture the final state in the series before the pipeline
            // is torn down, and push it through any JSONL sink.
            t.sample_now();
            t.flush();
        }
        if let Some(m) = &self.metrics {
            {
                let reg = m.registry();
                let mut reg = reg.lock().unwrap();
                for rec in recorders.iter() {
                    rec.with_recorder(|r| r.publish_metrics(&mut reg));
                }
                // The CLI's sessions all ride one reactor (or pool):
                // its sessions/wakeups/batched-syscall gauges belong in
                // the same report.
                match &self.pool {
                    Some(pool) => pool.publish_metrics(&mut reg),
                    None => hrmc::net::Reactor::global().publish_metrics(&mut reg),
                }
            }
            println!("{}", m.snapshot().render_json());
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         hrmc send <file>  [--group A.B.C.D:port] [--iface ip] [--rate-mbps N]\n            \
                           [--buffer-kb N] [--wait-receivers N] [--fec K]\n  \
         hrmc recv <file>  [--group A.B.C.D:port] [--iface ip] [--buffer-kb N]\n  \
         hrmc selftest     [--group A.B.C.D:port]\n  \
         hrmc analyze <trace.jsonl> [--json]\n  \
         hrmc top <addr | telemetry.jsonl> [--once] [--refresh ms]\n\n\
         Observability (send/recv/selftest):\n  \
         --trace <path>    write every protocol state transition as JSON lines\n                    \
                           (wall-clock µs since bind/join, \"src\" tags the endpoint)\n  \
         --metrics         print the metrics registry (counters, gauges,\n                    \
                           latency histograms) as JSON on exit\n  \
         --flight <path>   bounded flight recorder: keep the last N events per\n                    \
                           endpoint in memory, dump the window on exit\n  \
         --flight-capacity N  events retained per endpoint (default 4096)\n  \
         --telemetry <ip:port>  serve continuous telemetry over HTTP while the\n                    \
                           transfer runs: /metrics (Prometheus text) and /json;\n                    \
                           port 0 picks a free port (printed on stderr)\n  \
         --sample-interval N  telemetry sampling interval in ms (default 500)\n  \
         --telemetry-jsonl <path>  also stream every telemetry sample to a\n                    \
                           JSONL file (replay with: hrmc top <path>)\n  \
         --health          arm the online protocol health monitor (needs\n                    \
                           --telemetry): streaming invariant checks raise\n                    \
                           structured alerts on /alerts, in /json, and as\n                    \
                           hrmc_alerts_* metrics on /metrics\n  \
         --datapath <epoll|uring>  reactor I/O backend (default epoll); uring\n                    \
                           needs a kernel with io_uring and a build with\n                    \
                           --features uring, else it falls back to epoll\n                    \
                           (the chosen backend is printed on stderr)\n  \
         --reactor-threads N  shard sessions across N reactor threads\n                    \
                           (default 1); telemetry aggregates all shards\n\n\
         `top` renders a refreshing terminal dashboard from a live telemetry\n\
         endpoint (`hrmc top 127.0.0.1:9090`) or summarizes a recorded sample\n\
         file; --once prints a single frame, --refresh sets the period. With\n\
         --health armed on the scraped endpoint, frames include an alerts pane.\n\n\
         `analyze` reconstructs per-sequence causal lifecycles from any JSONL\n\
         trace this tool or the simulator writes (streamed or flight-recorded)\n\
         and prints loss, recovery-latency, NAK-suppression, flow-control,\n\
         buffer-release, and RTT diagnoses (--json for machine-readable).\n\n\
         Reliable multicast file transfer (H-RMC, SC'99). The group address\n\
         must be a multicast address (239.0.0.0/8 recommended); every\n\
         participant must use the same group and interface."
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> (Opts, Vec<String>) {
    let mut opts = Opts::default();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--group" => {
                i += 1;
                opts.group = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--iface" => {
                i += 1;
                opts.iface = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--rate-mbps" => {
                i += 1;
                let mbps: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.rate = mbps * 1_000_000 / 8;
            }
            "--buffer-kb" => {
                i += 1;
                let kb: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.buffer = kb * 1024;
            }
            "--wait-receivers" => {
                i += 1;
                opts.wait_receivers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fec" => {
                i += 1;
                opts.fec = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--trace" => {
                i += 1;
                opts.trace = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                opts.metrics = true;
            }
            "--flight" => {
                i += 1;
                opts.flight = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--flight-capacity" => {
                i += 1;
                opts.flight_capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                opts.json = true;
            }
            "--telemetry" => {
                i += 1;
                opts.telemetry = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--sample-interval" => {
                i += 1;
                opts.sample_interval_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--telemetry-jsonl" => {
                i += 1;
                opts.telemetry_jsonl = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--health" => {
                opts.health = true;
            }
            "--datapath" => {
                i += 1;
                opts.datapath = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--reactor-threads" => {
                i += 1;
                opts.reactor_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--once" => {
                opts.once = true;
            }
            "--refresh" => {
                i += 1;
                opts.refresh_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if other.starts_with("--") => usage(),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    (opts, positional)
}

fn config(opts: &Opts) -> ProtocolConfig {
    let mut c = ProtocolConfig::hrmc().with_buffer(opts.buffer);
    c.max_rate = opts.rate;
    if let Some(k) = opts.fec {
        c = c.with_fec(k);
    }
    c
}

fn cmd_send(file: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let mut f = std::fs::File::open(file)?;
    let size = f.metadata()?.len();
    let obs = Obs::open(opts)?;
    let mut b = Session::sender(opts.group)
        .interface(opts.iface)
        .config(config(opts));
    if let Some(pool) = &obs.pool {
        b = b.reactor_pool(pool);
    }
    if let Some(o) = obs.for_role("sender") {
        b = b.observer(o);
    }
    let sender = b.bind()?;
    eprintln!(
        "sending {file} ({size} bytes) to {} — waiting for {} receiver(s)...",
        opts.group, opts.wait_receivers
    );
    // Kick the group with a trickle so receivers can JOIN (membership is
    // data-triggered), then wait for the roster.
    let started = std::time::Instant::now();
    let mut buf = vec![0u8; 256 * 1024];
    let mut sent: u64 = 0;
    // Send the first chunk to trigger JOINs.
    let n = f.read(&mut buf)?;
    sender.send(&buf[..n])?;
    sent += n as u64;
    while sender.member_count() < opts.wait_receivers {
        if started.elapsed() > Duration::from_secs(60) {
            return Err("timed out waiting for receivers to join".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("{} receiver(s) joined; streaming...", sender.member_count());
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        sender.send(&buf[..n])?;
        sent += n as u64;
        eprint!("\r{:>3}%", sent * 100 / size.max(1));
    }
    let stats = sender.close_and_wait(Duration::from_secs(600))?;
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "\rdone: {sent} bytes in {secs:.2} s ({:.2} Mbit/s), {} retransmissions, rtt {:.1} ms",
        sent as f64 * 8.0 / secs / 1e6,
        stats.retransmissions,
        sender.rtt() as f64 / 1000.0
    );
    obs.finish();
    Ok(())
}

fn cmd_recv(file: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(file)?);
    let obs = Obs::open(opts)?;
    let mut b = Session::receiver(opts.group)
        .interface(opts.iface)
        .config(config(opts));
    if let Some(pool) = &obs.pool {
        b = b.reactor_pool(pool);
    }
    if let Some(o) = obs.for_role("recv") {
        b = b.observer(o);
    }
    let receiver = b.bind()?;
    eprintln!("joined {}; waiting for the stream...", opts.group);
    let mut buf = vec![0u8; 64 * 1024];
    let mut total: u64 = 0;
    let started = std::time::Instant::now();
    loop {
        match receiver.recv(&mut buf, Duration::from_secs(3600)) {
            Ok(0) => break,
            Ok(n) => {
                out.write_all(&buf[..n])?;
                total += n as u64;
            }
            Err(e) => return Err(format!("receive failed: {e}").into()),
        }
    }
    out.flush()?;
    receiver.close();
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "received {total} bytes into {file} in {secs:.2} s ({:.2} Mbit/s)",
        total as f64 * 8.0 / secs / 1e6
    );
    obs.finish();
    Ok(())
}

fn cmd_selftest(opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("selftest: 2 in-process receivers over loopback, 1 MB");
    let payload: Vec<u8> = (0..1_000_000usize).map(|i| (i * 31 % 251) as u8).collect();
    let mut cfg = config(opts);
    cfg.initial_rtt = 2_000;
    cfg.anonymous_release_hold = 500_000;
    let obs = Obs::open(opts)?;
    let receivers: Vec<_> = (0..2)
        .map(|i| {
            let mut b = Session::receiver(opts.group)
                .interface(opts.iface)
                .config(cfg.clone());
            if let Some(pool) = &obs.pool {
                b = b.reactor_pool(pool);
            }
            if let Some(o) = obs.for_role(&format!("recv{i}")) {
                b = b.observer(o);
            }
            b.bind().unwrap_or_else(|e| panic!("receiver {i}: {e}"))
        })
        .collect();
    let mut b = Session::sender(opts.group)
        .interface(opts.iface)
        .config(cfg);
    if let Some(pool) = &obs.pool {
        b = b.reactor_pool(pool);
    }
    if let Some(o) = obs.for_role("sender") {
        b = b.observer(o);
    }
    let sender = b.bind()?;
    let readers: Vec<_> = receivers
        .into_iter()
        .map(|r| {
            let expect = payload.clone();
            std::thread::spawn(move || {
                let mut got = Vec::with_capacity(expect.len());
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match r.recv(&mut buf, Duration::from_secs(60)) {
                        Ok(0) => break,
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) => panic!("recv: {e}"),
                    }
                }
                assert_eq!(got, expect, "stream corrupted");
            })
        })
        .collect();
    sender.send(&payload)?;
    sender.close_and_wait(Duration::from_secs(120))?;
    for t in readers {
        t.join().expect("reader panicked");
    }
    eprintln!("selftest passed: both receivers verified 1 MB byte-for-byte");
    obs.finish();
    Ok(())
}

fn cmd_analyze(trace: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let analysis = hrmc_trace::analyze_file(std::path::Path::new(trace))?;
    if opts.json {
        println!("{}", analysis.to_json());
    } else {
        print!("{}", analysis.render_table());
    }
    Ok(())
}

/// `hrmc top <addr>` — live refreshing dashboard scraped from a
/// telemetry endpoint's `/json`; `hrmc top <file>` — one-shot summary
/// of a recorded telemetry JSONL (mixed event/telemetry streams work:
/// event lines are passed over).
fn cmd_top(target: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    if let Ok(addr) = target.parse::<SocketAddr>() {
        loop {
            let body = hrmc::net::telemetry::scrape(addr, "/json", Duration::from_secs(5))
                .map_err(|e| format!("cannot scrape {addr}: {e}"))?;
            let json: serde_json::Value =
                serde_json::from_str(&body).map_err(|e| format!("bad /json body: {e}"))?;
            let frame = hrmc::top::render_endpoint_frame(&addr.to_string(), &json);
            if opts.once {
                print!("{frame}");
                return Ok(());
            }
            print!("{}{frame}", hrmc::top::CLEAR);
            std::io::stdout().flush()?;
            std::thread::sleep(Duration::from_millis(opts.refresh_ms.max(100)));
        }
    }
    let (mut samples, stats) = hrmc_trace::parse_telemetry_file(std::path::Path::new(target))?;
    if samples.is_empty() {
        // Not a sampler stream — maybe a simulator timeseries
        // (`timeline --timeseries`): flat rows, no discriminator.
        samples = hrmc::top::parse_sim_timeseries(&std::fs::read_to_string(target)?);
    }
    if samples.is_empty() {
        return Err(format!(
            "{target}: no telemetry samples found ({} lines read; is this an event-only trace?)",
            stats.lines
        )
        .into());
    }
    print!("{}", hrmc::top::render_trace(target, &samples));
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let (opts, positional) = parse(&args[1..]);
    let result = match (args[0].as_str(), positional.as_slice()) {
        ("send", [file]) => cmd_send(file, &opts),
        ("recv", [file]) => cmd_recv(file, &opts),
        ("selftest", []) => cmd_selftest(&opts),
        ("analyze", [trace]) => cmd_analyze(trace, &opts),
        ("top", [target]) => cmd_top(target, &opts),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
