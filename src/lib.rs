//! # hrmc — a reproduction of H-RMC, the Hybrid Reliable Multicast
//! protocol for the Linux kernel (McKinley, Rao, Wright — SC'99)
//!
//! H-RMC delivers a byte stream reliably from one sender to a multicast
//! group over best-effort IP multicast. It is primarily NAK-based, with
//! three additions over its pure-NAK predecessor RMC that close the
//! finite-buffer reliability hole: per-receiver membership state,
//! periodic receiver UPDATEs on an adaptive timer, and sender PROBEs
//! before buffer release.
//!
//! This façade re-exports the workspace:
//!
//! * [`wire`] — the 20-byte packet header, eleven packet types, checksum;
//! * [`core`] — sans-io [`core::SenderEngine`] / [`core::ReceiverEngine`]
//!   implementing the full protocol (plus the RMC baseline);
//! * [`sim`] — the discrete-event network simulator (the paper's CSIM
//!   substrate): routers, NICs, hosts, characteristic groups A/B/C;
//! * [`net`] — a real UDP-multicast driver hosting the same engines;
//! * [`app`] — scenario builders and summary statistics used by the
//!   experiment harnesses.
//!
//! ## Quick start (simulated)
//!
//! ```
//! use hrmc::app::Scenario;
//!
//! // 3 receivers on a simulated 10 Mbps Ethernet, 256 KiB kernel
//! // buffers, a 1 MB transfer:
//! let report = Scenario::lan(3, 10_000_000, 256 * 1024, 1_000_000).run();
//! assert!(report.completed);
//! assert!(report.all_intact());
//! println!("throughput: {:.2} Mbps", report.throughput_mbps);
//! ```
//!
//! ## Quick start (real sockets)
//!
//! See `examples/live_multicast.rs`: the [`net::Session`] builder runs
//! the identical engines over UDP multicast (loopback-capable, multiple
//! receivers per host), with every session in the process driven by one
//! shared [`net::Reactor`] thread — batched `recvmmsg`/`sendmmsg`
//! syscalls, one timer heap, O(1) threads regardless of session count:
//!
//! ```no_run
//! use hrmc::net::Session;
//! let group: std::net::SocketAddrV4 = "239.255.1.1:45000".parse().unwrap();
//! let rx = Session::receiver(group).bind().unwrap();
//! let tx = Session::sender(group).flight_recorder(4096).bind().unwrap();
//! tx.send(b"reliable bytes").unwrap();
//! # let _ = rx;
//! ```

pub mod top;

/// Scenario/application helpers (re-export of `hrmc-app`).
pub use hrmc_app as app;
/// Sans-io protocol engines (re-export of `hrmc-core`).
pub use hrmc_core as core;
/// Real-socket driver (re-export of `hrmc-net`).
pub use hrmc_net as net;
/// Discrete-event simulator (re-export of `hrmc-sim`).
pub use hrmc_sim as sim;
/// Wire format (re-export of `hrmc-wire`).
pub use hrmc_wire as wire;

pub use hrmc_core::{
    Alert, AlertRule, Event, FlightRecorder, HealthConfig, HealthMonitor, Histogram,
    HistogramSummary, JsonlObserver, MetricsObserver, MetricsRegistry, MultiObserver,
    ProtocolObserver, Severity, SharedRecorder,
};
pub use hrmc_core::{Dest, PeerId, ProtocolConfig, ReceiverEngine, ReliabilityMode, SenderEngine};
pub use hrmc_wire::{Packet, PacketType};
