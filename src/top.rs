//! `hrmc top` rendering: turn continuous telemetry into terminal
//! dashboard frames.
//!
//! Two inputs, one look:
//!
//! * **live** — the `/json` body of a running [`hrmc_net::Telemetry`]
//!   endpoint, refreshed in place ([`render_endpoint_frame`]);
//! * **recorded** — a JSONL file of sampler lines (written by
//!   `--telemetry`'s sink, a simulation's `--timeseries`, or any mixed
//!   event/telemetry stream), summarized once ([`render_trace`]).
//!
//! Pure string-in/string-out so every frame is testable without a
//! terminal; the only ANSI the caller needs is [`CLEAR`].

use std::fmt::Write as _;

use hrmc_core::TelemetrySample;
use serde_json::Value;

/// ANSI: clear the screen and home the cursor (prefix of every live
/// refresh).
pub const CLEAR: &str = "\x1b[2J\x1b[H";

/// Eight-level unicode sparkline of a series, scaled to its maximum.
fn sparkline(vals: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = vals.iter().copied().max().unwrap_or(0).max(1);
    vals.iter().map(|v| BARS[(v * 7 / max) as usize]).collect()
}

/// Downsample a series to at most `width` buckets by summing runs, so a
/// long recording still fits one terminal line.
fn downsample(vals: &[u64], width: usize) -> Vec<u64> {
    if vals.len() <= width || width == 0 {
        return vals.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let lo = b * vals.len() / width;
        let hi = ((b + 1) * vals.len() / width).max(lo + 1);
        out.push(vals[lo..hi.min(vals.len())].iter().sum());
    }
    out
}

/// The alerts pane: the `/alerts`-shaped transition history (also
/// embedded in `/json` under `"alerts"`) as a summary line plus the
/// most recent transitions, newest last. Raised entries are flagged
/// `!!`; a rule is *active* when its latest transition is a raise.
fn render_alerts(out: &mut String, alerts: &[Value]) {
    let mut last_state: std::collections::BTreeMap<&str, bool> = Default::default();
    for a in alerts {
        if let (Some(rule), Some(raised)) = (
            a.get("rule").and_then(Value::as_str),
            a.get("raised").and_then(Value::as_bool),
        ) {
            last_state.insert(rule, raised);
        }
    }
    let active = last_state.values().filter(|&&raised| raised).count();
    let _ = writeln!(
        out,
        "alerts  {active} active, {} transition(s)",
        alerts.len()
    );
    let skip = alerts.len().saturating_sub(8);
    for a in &alerts[skip..] {
        let raised = a.get("raised").and_then(Value::as_bool).unwrap_or(false);
        let _ = writeln!(
            out,
            "  {} {:<8} {:<17} {:<7} t +{:.1}s  value {}m  limit {}m",
            if raised { "!!" } else { "  " },
            a.get("severity").and_then(Value::as_str).unwrap_or("?"),
            a.get("rule").and_then(Value::as_str).unwrap_or("?"),
            if raised { "RAISED" } else { "cleared" },
            a.get("t_us").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6,
            a.get("value_m").and_then(Value::as_u64).unwrap_or(0),
            a.get("limit_m").and_then(Value::as_u64).unwrap_or(0),
        );
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// The per-sample body shared by both views: interval rates, gauges,
/// and histogram quantiles.
fn render_sample(out: &mut String, s: &TelemetrySample) {
    let _ = writeln!(
        out,
        "sample #{}  t +{:.1}s  interval {}ms",
        s.seq,
        s.t_us as f64 / 1e6,
        s.interval_us / 1_000
    );
    let mut rates: Vec<(&str, u64, f64)> = s
        .counters
        .iter()
        .map(|(k, &d)| (k.as_str(), d, s.rate_per_sec(k)))
        .filter(|&(_, d, _)| d > 0)
        .collect();
    rates.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(b.0)));
    if !rates.is_empty() {
        let _ = writeln!(out, "\n  {:<32} {:>10} {:>12}", "counter", "Δ", "per-sec");
        for (name, delta, rate) in rates.iter().take(14) {
            let _ = writeln!(out, "  {:<32} {:>10} {:>12}", name, delta, fmt_rate(*rate));
        }
    }
    if !s.gauges.is_empty() {
        let _ = write!(out, "\n  gauges ");
        for (i, (k, v)) in s.gauges.iter().enumerate() {
            let _ = write!(out, "{}{k}={v}", if i > 0 { "  " } else { "" });
        }
        out.push('\n');
    }
    if !s.hists.is_empty() {
        let _ = writeln!(
            out,
            "\n  {:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &s.hists {
            let _ = writeln!(
                out,
                "  {:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
                name, h.count, h.p50, h.p90, h.p99, h.max
            );
        }
    }
}

/// Render one live frame from a telemetry endpoint's `/json` body.
/// Unknown or missing sections degrade to absence, never to a panic —
/// the dashboard must outlive whatever half-written state it scrapes.
pub fn render_endpoint_frame(endpoint: &str, body: &Value) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "hrmc top — {endpoint}\n");
    if let Some(r) = body.get("reactor") {
        // Endpoints predating the pluggable datapath omit backend and
        // shards; render the single-reactor epoll shape they had.
        let _ = writeln!(
            out,
            "reactor  backend {} ×{}  sessions {}  syscalls/pkt {}  loop p99 {}µs  timer slip p99 {}µs  idle cap {}ms",
            r.get("backend").and_then(Value::as_str).unwrap_or("epoll"),
            r.get("shards").and_then(Value::as_u64).unwrap_or(1),
            r.get("sessions").and_then(Value::as_u64).unwrap_or(0),
            r.get("syscalls_per_packet")
                .and_then(Value::as_f64)
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "-".into()),
            r.get("loop_p99_us").and_then(Value::as_u64).unwrap_or(0),
            r.get("timer_slippage_p99_us")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            r.get("idle_cap_ms").and_then(Value::as_u64).unwrap_or(0),
        );
    }
    if let Some(sessions) = body.get("sessions").and_then(Value::as_array) {
        if !sessions.is_empty() {
            let _ = writeln!(
                out,
                "\n  {:<4} {:<9} {:>12} {:>12} {:>14} {:>14}",
                "id", "role", "rx pkts", "tx pkts", "rx bytes", "tx bytes"
            );
            for sess in sessions {
                let _ = writeln!(
                    out,
                    "  {:<4} {:<9} {:>12} {:>12} {:>14} {:>14}",
                    sess.get("id").and_then(Value::as_u64).unwrap_or(0),
                    sess.get("role").and_then(Value::as_str).unwrap_or("?"),
                    sess.get("packets_rx").and_then(Value::as_u64).unwrap_or(0),
                    sess.get("packets_tx").and_then(Value::as_u64).unwrap_or(0),
                    sess.get("bytes_rx").and_then(Value::as_u64).unwrap_or(0),
                    sess.get("bytes_tx").and_then(Value::as_u64).unwrap_or(0),
                );
            }
        }
    }
    if let Some(alerts) = body.get("alerts").and_then(Value::as_array) {
        if !alerts.is_empty() {
            out.push('\n');
            render_alerts(&mut out, alerts);
        }
    }
    out.push('\n');
    match body
        .get("sample")
        .and_then(hrmc_trace::parse_telemetry_sample)
    {
        Some(s) => render_sample(&mut out, &s),
        None => {
            let _ = writeln!(out, "(no sample yet)");
        }
    }
    out
}

/// Adapt a simulator timeseries (flat [`hrmc_sim::SimSamplePoint`]
/// rows, as `timeline --timeseries` writes) into sampler-shaped
/// [`TelemetrySample`]s so both recorded formats render through one
/// view. Cumulative fields become totals (with per-interval deltas
/// recomputed), instantaneous fields become gauges; lines without the
/// sim-point shape are passed over.
pub fn parse_sim_timeseries(input: &str) -> Vec<TelemetrySample> {
    let mut out: Vec<TelemetrySample> = Vec::new();
    let mut prev_t = 0u64;
    let mut prev: std::collections::BTreeMap<String, u64> = Default::default();
    for line in input.lines() {
        let Ok(v) = serde_json::from_str(line.trim()) else {
            continue;
        };
        let (Some(t_us), Some(_)) = (
            v.get("t_us").and_then(Value::as_u64),
            v.get("bytes_received").and_then(Value::as_u64),
        ) else {
            continue;
        };
        let mut totals = std::collections::BTreeMap::new();
        for key in [
            "bytes_received",
            "naks_sent",
            "retransmissions",
            "rate_halvings",
        ] {
            if let Some(n) = v.get(key).and_then(Value::as_u64) {
                totals.insert(key.to_string(), n);
            }
        }
        let counters = totals
            .iter()
            .map(|(k, &n)| {
                (
                    k.clone(),
                    n.saturating_sub(prev.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let mut gauges = std::collections::BTreeMap::new();
        for key in [
            "sender_buffered_bytes",
            "rate_bps",
            "rtt_us",
            "recovery_backlog",
            "completed_receivers",
        ] {
            if let Some(n) = v.get(key).and_then(Value::as_u64) {
                gauges.insert(key.to_string(), n);
            }
        }
        if let Some(occ) = v.get("window_occupancy").and_then(Value::as_f64) {
            gauges.insert(
                "window_occupancy_pct".to_string(),
                (occ * 100.0).round() as u64,
            );
        }
        let interval_us = if out.is_empty() {
            0
        } else {
            t_us.saturating_sub(prev_t)
        };
        prev_t = t_us;
        prev = totals.clone();
        out.push(TelemetrySample {
            seq: out.len() as u64,
            t_us,
            interval_us,
            counters,
            totals,
            gauges,
            hists: Default::default(),
        });
    }
    out
}

/// Summarize a recorded telemetry series: per-counter totals with a
/// rate sparkline, final gauges, and the last sample in full.
pub fn render_trace(source: &str, samples: &[TelemetrySample]) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "hrmc top — {source} (recorded)\n");
    let Some(last) = samples.last() else {
        let _ = writeln!(out, "(no telemetry samples)");
        return out;
    };
    let first = &samples[0];
    let _ = writeln!(
        out,
        "{} samples spanning {:.1}s (t {}µs → {}µs)\n",
        samples.len(),
        last.t_us.saturating_sub(first.t_us) as f64 / 1e6,
        first.t_us,
        last.t_us
    );
    // One line per counter that ever moved: cumulative total, peak
    // per-interval delta, and the shape of its activity over time.
    let mut names: Vec<&String> = last.totals.keys().collect();
    names.sort_by_key(|n| std::cmp::Reverse(last.total(n)));
    let _ = writeln!(
        out,
        "  {:<32} {:>12} {:>10}  activity",
        "counter", "total", "peak Δ"
    );
    for name in names.into_iter().take(14) {
        let deltas: Vec<u64> = samples.iter().map(|s| s.counter_delta(name)).collect();
        if deltas.iter().all(|&d| d == 0) {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<32} {:>12} {:>10}  {}",
            name,
            last.total(name),
            deltas.iter().copied().max().unwrap_or(0),
            sparkline(&downsample(&deltas, 32)),
        );
    }
    out.push('\n');
    render_sample(&mut out, last);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample(seq: u64, t_us: u64, interval_us: u64, sent_delta: u64) -> TelemetrySample {
        let mut counters = BTreeMap::new();
        counters.insert("data_packets_sent".to_string(), sent_delta);
        let mut totals = BTreeMap::new();
        totals.insert("data_packets_sent".to_string(), (seq + 1) * sent_delta);
        let mut gauges = BTreeMap::new();
        gauges.insert("reactor_sessions".to_string(), 2);
        TelemetrySample {
            seq,
            t_us,
            interval_us,
            counters,
            totals,
            gauges,
            hists: BTreeMap::new(),
        }
    }

    #[test]
    fn sparkline_scales_to_max_and_downsamples() {
        assert_eq!(sparkline(&[0, 7, 14]), "▁▄█");
        assert_eq!(sparkline(&[0]), "▁");
        let long: Vec<u64> = (0..100).collect();
        assert_eq!(downsample(&long, 10).len(), 10);
        assert_eq!(downsample(&long, 10).iter().sum::<u64>(), (0..100).sum());
        assert_eq!(downsample(&[1, 2, 3], 10), vec![1, 2, 3]);
    }

    #[test]
    fn endpoint_frame_renders_reactor_sessions_and_sample() {
        let body: Value = serde_json::from_str(
            "{\"sample\":{\"telemetry\":1,\"seq\":3,\"t_us\":2000000,\"interval_us\":500000,\
             \"counters\":{\"data_packets_sent\":50},\"totals\":{\"data_packets_sent\":200},\
             \"gauges\":{\"reactor_sessions\":2},\
             \"hists\":{\"reactor_loop_us\":{\"count\":9,\"delta\":4,\"p50\":15,\"p90\":31,\
             \"p99\":63,\"max\":60}}},\
             \"sessions\":[{\"id\":1,\"role\":\"sender\",\"packets_rx\":7,\"packets_tx\":150,\
             \"bytes_rx\":700,\"bytes_tx\":210000}],\
             \"reactor\":{\"backend\":\"uring\",\"shards\":4,\"sessions\":1,\
             \"syscalls_per_packet\":0.1441,\"loop_p99_us\":63,\
             \"timer_slippage_p99_us\":127,\"idle_cap_ms\":100}}",
        )
        .unwrap();
        let frame = render_endpoint_frame("127.0.0.1:9000", &body);
        assert!(frame.contains("hrmc top — 127.0.0.1:9000"));
        assert!(frame.contains("backend uring ×4"));
        assert!(frame.contains("syscalls/pkt 0.1441"));
        assert!(frame.contains("loop p99 63µs"));
        assert!(frame.contains("sender"));
        assert!(frame.contains("210000"));
        assert!(frame.contains("sample #3"));
        assert!(frame.contains("data_packets_sent"));
        assert!(frame.contains("100")); // 50 Δ / 0.5 s = 100/s
        assert!(frame.contains("reactor_loop_us"));
    }

    #[test]
    fn downsample_handles_single_sample_and_empty_series() {
        assert_eq!(downsample(&[5], 32), vec![5]);
        assert_eq!(downsample(&[5], 1), vec![5]);
        assert_eq!(downsample(&[5], 0), vec![5]);
        assert_eq!(downsample(&[], 32), Vec::<u64>::new());
        assert_eq!(sparkline(&[5]), "█");
        let one = sample(0, 250_000, 0, 40);
        let text = render_trace("one.jsonl", &[one]);
        assert!(text.contains("1 samples"), "{text}");
        assert!(text.contains("sample #0"), "{text}");
    }

    #[test]
    fn endpoint_frame_renders_alerts_pane() {
        let body: Value = serde_json::from_str(
            "{\"sample\":null,\"sessions\":[],\"alerts\":[\
             {\"t_us\":600000,\"rule\":\"nak_storm\",\"severity\":\"warning\",\
              \"raised\":true,\"value_m\":22000,\"limit_m\":1000},\
             {\"t_us\":2100000,\"rule\":\"window_stall\",\"severity\":\"critical\",\
              \"raised\":true,\"value_m\":2500,\"limit_m\":2000},\
             {\"t_us\":3200000,\"rule\":\"nak_storm\",\"severity\":\"warning\",\
              \"raised\":false,\"value_m\":200,\"limit_m\":1000}]}",
        )
        .unwrap();
        let frame = render_endpoint_frame("127.0.0.1:9000", &body);
        assert!(
            frame.contains("alerts  1 active, 3 transition(s)"),
            "{frame}"
        );
        assert!(
            frame.contains("!! warning  nak_storm         RAISED"),
            "{frame}"
        );
        assert!(
            frame.contains("!! critical window_stall      RAISED"),
            "{frame}"
        );
        assert!(
            frame.contains("   warning  nak_storm         cleared"),
            "{frame}"
        );
        assert!(
            frame.contains("t +0.6s  value 22000m  limit 1000m"),
            "{frame}"
        );
    }

    #[test]
    fn healthy_alerts_section_renders_no_pane() {
        let body: Value = serde_json::from_str("{\"sample\":null,\"alerts\":[]}").unwrap();
        let frame = render_endpoint_frame("x", &body);
        assert!(!frame.contains("alerts "), "{frame}");
        assert!(frame.contains("(no sample yet)"));
    }

    #[test]
    fn endpoint_frame_defaults_backend_for_old_recordings() {
        let body: Value = serde_json::from_str(
            "{\"sample\":null,\"reactor\":{\"sessions\":2,\"syscalls_per_packet\":0.2,\
             \"loop_p99_us\":1,\"timer_slippage_p99_us\":2,\"idle_cap_ms\":100}}",
        )
        .unwrap();
        let frame = render_endpoint_frame("x", &body);
        assert!(frame.contains("backend epoll ×1"), "{frame}");
    }

    #[test]
    fn endpoint_frame_survives_missing_sections() {
        let body: Value = serde_json::from_str("{\"sample\":null}").unwrap();
        let frame = render_endpoint_frame("x", &body);
        assert!(frame.contains("(no sample yet)"));
    }

    #[test]
    fn sim_timeseries_adapts_to_sampler_shape() {
        let input = "\
            {\"t_us\":50000,\"bytes_received\":1000,\"throughput_mbps\":0.16,\"naks_sent\":2,\
             \"nak_rate_per_sec\":40.0,\"retransmissions\":1,\"sender_buffered_bytes\":4096,\
             \"rate_bps\":125000,\"rtt_us\":2000,\"recovery_backlog\":3,\
             \"window_occupancy\":0.25,\"completed_receivers\":0,\"rate_halvings\":0}\n\
            not json\n\
            {\"t_us\":100000,\"bytes_received\":3000,\"throughput_mbps\":0.32,\"naks_sent\":2,\
             \"nak_rate_per_sec\":0.0,\"retransmissions\":1,\"sender_buffered_bytes\":0,\
             \"rate_bps\":125000,\"rtt_us\":2100,\"recovery_backlog\":0,\
             \"window_occupancy\":0.5,\"completed_receivers\":2,\"rate_halvings\":3}\n";
        let samples = parse_sim_timeseries(input);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].total("bytes_received"), 1000);
        assert_eq!(samples[0].interval_us, 0);
        assert_eq!(samples[1].interval_us, 50_000);
        assert_eq!(samples[1].counter_delta("bytes_received"), 2000);
        assert_eq!(samples[1].counter_delta("rate_halvings"), 3);
        assert_eq!(samples[1].gauge("window_occupancy_pct"), Some(50));
        assert_eq!(samples[1].gauge("completed_receivers"), Some(2));
        let text = render_trace("sim.jsonl", &samples);
        assert!(text.contains("bytes_received"));
    }

    #[test]
    fn trace_summary_spans_the_series() {
        let samples: Vec<TelemetrySample> = (0..20)
            .map(|i| sample(i, (i + 1) * 250_000, if i == 0 { 0 } else { 250_000 }, 40))
            .collect();
        let text = render_trace("run.jsonl", &samples);
        assert!(text.contains("hrmc top — run.jsonl (recorded)"));
        assert!(text.contains("20 samples"));
        assert!(text.contains("data_packets_sent"));
        assert!(text.contains('█'), "sparkline rendered: {text}");
        assert!(text.contains("sample #19"));
        let empty = render_trace("none.jsonl", &[]);
        assert!(empty.contains("(no telemetry samples)"));
    }
}
