//! Minimal in-tree stand-in for `parking_lot`, built on `std::sync`.
//!
//! The two API differences from `std` that matter to callers are
//! preserved: `lock()` returns the guard directly (no poisoning
//! `Result`), and `Condvar::wait_for` takes `&mut MutexGuard` instead of
//! consuming the guard by value.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Internally holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily take it by value.
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable matching parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Block on the guard's mutex until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present on wait entry");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let cv = Condvar::new();
        let m = Mutex::new(());
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_secs(5));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
