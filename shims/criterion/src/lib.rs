//! Minimal in-tree stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! timer instead of criterion's statistical machinery. Each benchmark
//! prints one line: id, mean time per iteration, and throughput when a
//! `Throughput` was set.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget control (ignored by the shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup cost is amortized per batch.
    SmallInput,
    /// Larger inputs.
    LargeInput,
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Wall-clock time budget spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// True when the bench binary was invoked as `cargo bench -- --test`
/// (criterion's smoke mode): each routine runs exactly once, un-timed,
/// so CI can prove every bench still executes without paying for a
/// calibrated measurement.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A harness with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), None, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _c: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the shim
    /// calibrates iteration counts from wall-clock time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Report throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    if test_mode() {
        println!("test: {id} ... ok");
        return;
    }
    let per_iter = b.mean_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let gib = n as f64 / per_iter.max(1e-9); // bytes/ns == GiB-ish/s
            format!("  {:.3} GB/s", gib)
        }
        Throughput::Elements(n) => {
            format!("  {:.3} Melem/s", n as f64 / per_iter.max(1e-9) * 1e3)
        }
    });
    println!(
        "bench: {:<50} {:>12}/iter{}",
        id,
        format_ns(per_iter),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: time one call, pick an iteration count that fills
        // the budget, then measure the batch.
        let t0 = Instant::now();
        black_box(routine());
        if test_mode() {
            return;
        }
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        if test_mode() {
            return;
        }
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/iter", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(8));
        g.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
