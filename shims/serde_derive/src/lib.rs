//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on non-generic structs with named
//! fields (all this workspace derives), honoring `#[serde(skip)]` on
//! fields. Parsing is done directly on the `proc_macro` token stream —
//! no `syn`/`quote`, since the build environment has no crates.io
//! access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by building a `serde::Value::Object` with
/// one entry per non-skipped field.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        _ => panic!("#[derive(Serialize)] shim supports structs only"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        _ => panic!("expected struct name"),
    };
    // The shim does not support generic structs (none in this workspace).
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("#[derive(Serialize)] shim does not support generics");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("#[derive(Serialize)] shim supports named-field structs only"),
    };

    let fields = parse_named_fields(body);
    let mut inserts = String::new();
    for f in &fields {
        inserts.push_str(&format!(
            "map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut map = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(map)\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("generated impl parses")
}

/// Advance past attribute (`# [...]`) and visibility (`pub`, `pub(...)`)
/// tokens. Returns `true` if any attribute seen carried `serde(skip)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    *i += 2;
                } else {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc: the restriction group.
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// `true` when an attribute body (the `[...]` content) is `serde(skip)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let parts: Vec<TokenTree> = stream.into_iter().collect();
    match (parts.first(), parts.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Names of the non-skipped fields of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skipped = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        // Consume the type: token trees until a top-level comma. Generic
        // angle brackets arrive as plain '<'/'>' puncts, so track their
        // depth — a comma inside `BTreeMap<K, V>` is not a separator.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if !skipped {
            fields.push(name);
        }
    }
    fields
}
