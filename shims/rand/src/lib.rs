//! Minimal in-tree stand-in for the `rand` crate.
//!
//! Provides the API surface the workspace uses: `rngs::SmallRng` seeded
//! via `SeedableRng::seed_from_u64`, with `Rng::gen`, `Rng::gen_bool`,
//! and `Rng::gen_range`. The generator is xoshiro256++-class quality
//! (xorshift with a splitmix64 seeder) — statistically plenty for
//! simulation loss models; it makes no cryptographic claims, exactly
//! like the real `SmallRng`.
//!
//! Stream values differ from the real crate's, so identical seeds give
//! different (but still deterministic and reproducible) trajectories.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }

    /// Uniform draw from `[low, high)`.
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        // Widening-multiply rejection-free mapping (Lemire); the tiny
        // modulo bias is irrelevant for simulation use.
        low + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
