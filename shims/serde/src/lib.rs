//! Minimal in-tree stand-in for `serde` (plus the value model the real
//! ecosystem keeps in `serde_json`).
//!
//! The build environment has no crates.io access; this shim provides the
//! surface the workspace uses: a [`Serialize`] trait producing a JSON
//! [`Value`], a derive macro re-exported from `serde_derive`, and the
//! `Value`/`Map`/`Number` data model that the `serde_json` shim
//! re-exports. Unlike real serde there is no serializer abstraction —
//! everything funnels through `Value`, which is all this workspace needs.

// Let the derive's emitted `::serde::...` paths resolve when the derive
// is used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::Serialize;

mod value;

pub use value::{Entry, Map, Number, Value};

/// Types convertible to a JSON [`Value`].
pub trait Serialize {
    /// Produce the JSON value representing `self`.
    fn to_value(&self) -> Value;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(42u64.to_value(), Value::Number(Number::from_u64(42)));
        assert_eq!((-3i32).to_value(), Value::Number(Number::from_i64(-3)));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![1u64.to_value(), 2u64.to_value()])
        );
    }

    #[derive(Serialize)]
    struct Demo {
        a: u64,
        #[serde(skip)]
        #[allow(dead_code)]
        hidden: u64,
        b: bool,
    }

    #[test]
    fn derive_produces_object_without_skipped_fields() {
        let v = Demo {
            a: 7,
            hidden: 9,
            b: true,
        }
        .to_value();
        let Value::Object(map) = v else {
            panic!("not an object")
        };
        assert_eq!(map.get("a"), Some(&7u64.to_value()));
        assert_eq!(map.get("b"), Some(&Value::Bool(true)));
        assert_eq!(map.get("hidden"), None);
        assert_eq!(map.len(), 2);
    }
}
