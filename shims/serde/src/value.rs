//! The JSON value model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON number: integer or float, like `serde_json::Number`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Number {
        Number::PosInt(v)
    }

    /// From a signed integer (normalized to `PosInt` when non-negative).
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// From a float.
    pub fn from_f64(v: f64) -> Number {
        Number::Float(v)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(v) => Some(v as f64),
            Number::NegInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        // serde_json semantics: integers never equal floats.
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

/// An insertion-ordered string-keyed map of JSON values.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing and returning any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some((_, v)) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(v, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// `true` when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Entry API (the `or_insert_with` subset the workspace uses).
    pub fn entry(&mut self, key: impl Into<String>) -> Entry<'_> {
        Entry {
            map: self,
            key: key.into(),
        }
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        // Key-set equality, order-independent (matching serde_json's
        // BTreeMap-backed Map).
        self.entries.len() == other.entries.len()
            && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

/// A view into a single map key, occupied or vacant.
pub struct Entry<'a> {
    map: &'a mut Map,
    key: String,
}

impl<'a> Entry<'a> {
    /// The value for this key, inserting `default()` if absent.
    pub fn or_insert_with(self, default: impl FnOnce() -> Value) -> &'a mut Value {
        let idx = match self.map.entries.iter().position(|(k, _)| *k == self.key) {
            Some(i) => i,
            None => {
                self.map.entries.push((self.key, default()));
                self.map.entries.len() - 1
            }
        };
        &mut self.map.entries[idx].1
    }

    /// The value for this key, inserting `default` if absent.
    pub fn or_insert(self, default: Value) -> &'a mut Value {
        self.or_insert_with(|| default)
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Index into an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array access.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The number as `u64` if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Missing keys index to `Null`, matching serde_json.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Inf; serde_json refuses, we emit null.
                    write!(f, "null")
                } else if v == v.trunc() && v.abs() < 1e15 {
                    // Keep a trailing ".0" so the token re-parses as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Null);
        m.insert("a".into(), Value::Bool(true));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn map_equality_ignores_order() {
        let mut a = Map::new();
        a.insert("x".into(), Value::Bool(true));
        a.insert("y".into(), Value::Null);
        let mut b = Map::new();
        b.insert("y".into(), Value::Null);
        b.insert("x".into(), Value::Bool(true));
        assert_eq!(a, b);
    }

    #[test]
    fn entry_or_insert_with() {
        let mut m = Map::new();
        m.entry("k").or_insert_with(|| Value::Array(vec![]));
        m.entry("k")
            .or_insert_with(|| unreachable!("occupied"))
            .as_array_mut()
            .unwrap()
            .push(Value::Bool(false));
        assert_eq!(m.get("k").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn number_float_int_inequality() {
        assert_ne!(
            Value::Number(Number::from_u64(1)),
            Value::Number(Number::from_f64(1.0))
        );
    }

    #[test]
    fn float_display_keeps_float_token() {
        assert_eq!(Number::from_f64(2.0).to_string(), "2.0");
        assert_eq!(Number::from_f64(0.5).to_string(), "0.5");
        assert_eq!(Number::from_u64(2).to_string(), "2");
    }
}
