//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the small slice of the real crate's API the workspace uses: an
//! immutable, cheaply cloneable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// A buffer referencing static data (copied here; the real crate
    /// borrows, but the semantics callers observe are identical).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[1..], &[2, 3]);
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }
}
