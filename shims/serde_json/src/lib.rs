//! Minimal in-tree stand-in for `serde_json`.
//!
//! Re-exports the value model from the `serde` shim and adds the pieces
//! the workspace uses on top: [`json!`], [`to_value`], [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. The parser and printer cover
//! the JSON this repo emits and reads back (reports, experiment output);
//! they are not a general-purpose battle-tested implementation.

pub use serde::{Entry, Map, Number, Value};

use std::fmt::Write as _;

/// Convert any [`serde::Serialize`] type to a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from JSON-like syntax: literals, arrays, objects
/// with string-literal keys, and serializable expressions as values.
/// Values are munched token-by-token up to the next top-level comma, so
/// expressions like `r.elapsed_us` or `-4` work.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let vec = {
            let mut vec: Vec<$crate::Value> = Vec::new();
            $crate::__json_array!(vec () $($tt)*);
            vec
        };
        $crate::Value::Array(vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::__json_object!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ($vec:ident ()) => {};
    ($vec:ident ($($val:tt)+)) => {
        $vec.push($crate::json!($($val)+));
    };
    ($vec:ident ($($val:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json!($($val)+));
        $crate::__json_array!($vec () $($rest)*);
    };
    ($vec:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_array!($vec ($($val)* $next) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:literal : $($rest:tt)*) => {
        $crate::__json_entry!($map $key () $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_entry {
    ($map:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::__json_object!($map $($rest)*);
    };
    ($map:ident $key:literal ($($val:tt)+)) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_entry!($map $key ($($val)* $next) $($rest)*);
    };
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // No surrogate-pair handling; this repo never
                            // emits astral-plane escapes.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        } else if text.starts_with('-') {
            Number::from_i64(
                text.parse::<i64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        } else {
            Number::from_u64(
                text.parse::<u64>()
                    .map_err(|e| Error(format!("bad number {text:?}: {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' , found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({
            "name": "hrmc",
            "count": 3,
            "ok": true,
            "none": null,
            "list": [1, 2, 3],
        });
        assert_eq!(v.get("name").unwrap().as_str(), Some("hrmc"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("none").unwrap().is_null());
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let x = 21u64;
        let v = json!({ "doubled": (x * 2) });
        assert_eq!(v.get("doubled").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "s": "line\nbreak \"quoted\"",
            "f": 0.25,
            "i": -4,
            "arr": [true, false, null],
            "obj": { "nested": 1 },
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn pretty_is_indented() {
        let text = to_string_pretty(&json!({ "a": [1] })).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{\"a\":").is_err());
        assert!(from_str("[1,]garbage").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn float_survives_roundtrip_as_float() {
        let text = to_string(&json!({ "v": 2.0 })).unwrap();
        assert_eq!(text, "{\"v\":2.0}");
        let back = from_str(&text).unwrap();
        assert_eq!(back.get("v").unwrap().as_f64(), Some(2.0));
        assert_eq!(back.get("v").unwrap().as_u64(), None);
    }
}
