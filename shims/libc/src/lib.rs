//! Minimal in-tree stand-in for the `libc` crate on Linux.
//!
//! Declares exactly the C types, constants, and functions
//! `hrmc-net` uses: multicast socket setup (`hrmc-net::socket`) and the
//! shared reactor's event loop (`hrmc-net::reactor` — epoll, eventfd,
//! and the batched `recvmmsg`/`sendmmsg` datagram syscalls).
//! Constant values are the Linux userspace ABI values (identical on
//! x86-64 and aarch64).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_addr_t = u32;
pub type in_port_t = u16;
pub type time_t = i64;

pub const AF_INET: c_int = 2;
pub const SOCK_DGRAM: c_int = 2;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_REUSEPORT: c_int = 15;
pub const IPPROTO_IP: c_int = 0;
pub const IP_MULTICAST_IF: c_int = 32;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

/// IPv4 address in network byte order.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

/// IPv4 socket address (matches the kernel's `struct sockaddr_in`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Opaque generic socket address.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

/// Scatter/gather element (`struct iovec`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: size_t,
}

/// Message header for `sendmsg`/`recvmsg` families (`struct msghdr`,
/// 64-bit Linux layout — `repr(C)` inserts the kernel's padding).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct msghdr {
    pub msg_name: *mut c_void,
    pub msg_namelen: socklen_t,
    pub msg_iov: *mut iovec,
    pub msg_iovlen: size_t,
    pub msg_control: *mut c_void,
    pub msg_controllen: size_t,
    pub msg_flags: c_int,
}

/// One slot of a `recvmmsg`/`sendmmsg` vector (`struct mmsghdr`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct mmsghdr {
    pub msg_hdr: msghdr,
    pub msg_len: c_uint,
}

/// Nanosecond timeout (`struct timespec`, 64-bit Linux).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// One `epoll_wait` event. The kernel reads/writes this packed on
/// x86-64 (the historic 32-bit layout); other architectures use natural
/// alignment — mirror the real `libc` crate's cfg.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

extern "C" {
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn bind(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;

    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;

    pub fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut timespec,
    ) -> c_int;
    pub fn sendmmsg(sockfd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_roundtrip() {
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM, 0);
            assert!(fd >= 0, "socket() failed");
            let one: c_int = 1;
            let rc = setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &one as *const _ as *const c_void,
                std::mem::size_of::<c_int>() as socklen_t,
            );
            assert_eq!(
                rc,
                0,
                "setsockopt failed: {:?}",
                std::io::Error::last_os_error()
            );
            assert_eq!(close(fd), 0);
        }
    }

    #[test]
    fn sockaddr_in_layout() {
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<sockaddr>(), 16);
    }

    #[test]
    fn msghdr_layout_matches_64_bit_linux() {
        assert_eq!(std::mem::size_of::<iovec>(), 16);
        assert_eq!(std::mem::size_of::<msghdr>(), 56);
        // mmsghdr pads msg_len out to pointer alignment.
        assert_eq!(std::mem::size_of::<mmsghdr>(), 64);
        assert_eq!(std::mem::size_of::<timespec>(), 16);
    }

    #[test]
    fn epoll_event_layout() {
        let expect = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<epoll_event>(), expect);
    }

    #[test]
    fn epoll_eventfd_roundtrip() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0, "eventfd failed");
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 7,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);
            // Nothing written yet: wait with a zero timeout sees nothing.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);
            // Write the counter; the event becomes readable with our token.
            let one: u64 = 1;
            assert_eq!(
                write(ev, &one as *const u64 as *const c_void, 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let token = out[0].u64;
            assert_eq!(token, 7);
            let mut drained: u64 = 0;
            assert_eq!(read(ev, &mut drained as *mut u64 as *mut c_void, 8), 8);
            assert_eq!(drained, 1);
            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn recvmmsg_batches_queued_datagrams() {
        use std::net::UdpSocket;
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        let dst = rx.local_addr().unwrap();
        for payload in [&b"one"[..], b"two", b"three"] {
            tx.send_to(payload, dst).expect("send");
        }
        // Give loopback a moment to queue all three.
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Nonblocking: a blocking recvmmsg with flags=0 and no timeout
        // would park until every slot fills, and only 3 of 4 ever will.
        // (The reactor runs all its sockets nonblocking for the same
        // reason.)
        rx.set_nonblocking(true).expect("nonblocking");
        use std::os::unix::io::AsRawFd;
        const SLOTS: usize = 4;
        let mut bufs = [[0u8; 32]; SLOTS];
        let mut iovs = [iovec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        }; SLOTS];
        let mut names = [sockaddr_in {
            sin_family: 0,
            sin_port: 0,
            sin_addr: in_addr { s_addr: 0 },
            sin_zero: [0; 8],
        }; SLOTS];
        let mut hdrs = [mmsghdr {
            msg_hdr: msghdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        }; SLOTS];
        for i in 0..SLOTS {
            iovs[i].iov_base = bufs[i].as_mut_ptr() as *mut c_void;
            iovs[i].iov_len = 32;
            hdrs[i].msg_hdr.msg_name = &mut names[i] as *mut sockaddr_in as *mut c_void;
            hdrs[i].msg_hdr.msg_namelen = std::mem::size_of::<sockaddr_in>() as socklen_t;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        let n = unsafe {
            recvmmsg(
                rx.as_raw_fd(),
                hdrs.as_mut_ptr(),
                SLOTS as c_uint,
                0,
                std::ptr::null_mut(),
            )
        };
        assert_eq!(n, 3, "all queued datagrams in one call");
        assert_eq!(&bufs[0][..hdrs[0].msg_len as usize], b"one");
        assert_eq!(&bufs[2][..hdrs[2].msg_len as usize], b"three");
        // Source address captured per message.
        let port = u16::from_be(names[0].sin_port);
        assert_eq!(port, tx.local_addr().unwrap().port());
    }
}
