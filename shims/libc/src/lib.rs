//! Minimal in-tree stand-in for the `libc` crate on Linux.
//!
//! Declares exactly the C types, constants, and functions
//! `hrmc-net::socket` uses to configure multicast sockets before bind.
//! Constant values are the Linux userspace ABI values (identical on
//! x86-64 and aarch64).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_void = std::ffi::c_void;
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_addr_t = u32;
pub type in_port_t = u16;

pub const AF_INET: c_int = 2;
pub const SOCK_DGRAM: c_int = 2;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_REUSEPORT: c_int = 15;
pub const IPPROTO_IP: c_int = 0;
pub const IP_MULTICAST_IF: c_int = 32;

/// IPv4 address in network byte order.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

/// IPv4 socket address (matches the kernel's `struct sockaddr_in`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Opaque generic socket address.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

extern "C" {
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn bind(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_roundtrip() {
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM, 0);
            assert!(fd >= 0, "socket() failed");
            let one: c_int = 1;
            let rc = setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &one as *const _ as *const c_void,
                std::mem::size_of::<c_int>() as socklen_t,
            );
            assert_eq!(
                rc,
                0,
                "setsockopt failed: {:?}",
                std::io::Error::last_os_error()
            );
            assert_eq!(close(fd), 0);
        }
    }

    #[test]
    fn sockaddr_in_layout() {
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<sockaddr>(), 16);
    }
}
