//! Minimal in-tree stand-in for the `libc` crate on Linux.
//!
//! Declares exactly the C types, constants, and functions
//! `hrmc-net` uses: multicast socket setup (`hrmc-net::socket`), the
//! shared reactor's event loop (`hrmc-net::reactor` — epoll, eventfd,
//! and the batched `recvmmsg`/`sendmmsg` datagram syscalls), and the
//! raw io_uring ABI (`hrmc-net::datapath::uring` — setup/enter/register
//! syscalls, ring mmap offsets, and the SQE/CQE/params layouts).
//! Constant values are the Linux userspace ABI values (identical on
//! x86-64 and aarch64, except the syscall numbers, which are cfg'd).

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)] // SYS_* syscall numbers match libc's names

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_addr_t = u32;
pub type in_port_t = u16;
pub type time_t = i64;

pub const AF_INET: c_int = 2;
pub const SOCK_DGRAM: c_int = 2;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_REUSEPORT: c_int = 15;
pub const IPPROTO_IP: c_int = 0;
pub const IP_MULTICAST_IF: c_int = 32;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

// ---- mmap (io_uring ring mappings) ------------------------------------

pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_POPULATE: c_int = 0x008000;
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

// ---- io_uring syscall numbers (same on x86-64 and aarch64) ------------

pub const SYS_io_uring_setup: c_long = 425;
pub const SYS_io_uring_enter: c_long = 426;
pub const SYS_io_uring_register: c_long = 427;

// ---- io_uring ring mmap offsets ---------------------------------------

pub const IORING_OFF_SQ_RING: i64 = 0;
pub const IORING_OFF_CQ_RING: i64 = 0x8000000;
pub const IORING_OFF_SQES: i64 = 0x10000000;

// ---- io_uring_setup flags / features ----------------------------------

pub const IORING_SETUP_CQSIZE: u32 = 1 << 3;
pub const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
pub const IORING_FEAT_NODROP: u32 = 1 << 1;

// ---- io_uring_enter flags ---------------------------------------------

pub const IORING_ENTER_GETEVENTS: c_uint = 1 << 0;

// ---- SQE opcodes (only the ones the uring datapath posts) -------------

pub const IORING_OP_NOP: u8 = 0;
pub const IORING_OP_POLL_ADD: u8 = 6;
pub const IORING_OP_SENDMSG: u8 = 9;
pub const IORING_OP_RECVMSG: u8 = 10;
pub const IORING_OP_TIMEOUT: u8 = 11;
pub const IORING_OP_ASYNC_CANCEL: u8 = 14;

// ---- SQE flags --------------------------------------------------------

pub const IOSQE_IO_LINK: u8 = 1 << 2;

/// IPv4 address in network byte order.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

/// IPv4 socket address (matches the kernel's `struct sockaddr_in`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Opaque generic socket address.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

/// Scatter/gather element (`struct iovec`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: size_t,
}

/// Message header for `sendmsg`/`recvmsg` families (`struct msghdr`,
/// 64-bit Linux layout — `repr(C)` inserts the kernel's padding).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct msghdr {
    pub msg_name: *mut c_void,
    pub msg_namelen: socklen_t,
    pub msg_iov: *mut iovec,
    pub msg_iovlen: size_t,
    pub msg_control: *mut c_void,
    pub msg_controllen: size_t,
    pub msg_flags: c_int,
}

/// One slot of a `recvmmsg`/`sendmmsg` vector (`struct mmsghdr`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct mmsghdr {
    pub msg_hdr: msghdr,
    pub msg_len: c_uint,
}

/// Nanosecond timeout (`struct timespec`, 64-bit Linux).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// One `epoll_wait` event. The kernel reads/writes this packed on
/// x86-64 (the historic 32-bit layout); other architectures use natural
/// alignment — mirror the real `libc` crate's cfg.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

/// 64-bit timespec as io_uring's OP_TIMEOUT expects
/// (`struct __kernel_timespec` — both fields 64-bit on every arch).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct __kernel_timespec {
    pub tv_sec: i64,
    pub tv_nsec: i64,
}

/// Offsets of the SQ ring fields inside the SQ ring mmap
/// (`struct io_sqring_offsets`, 40 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_sqring_offsets {
    pub head: u32,
    pub tail: u32,
    pub ring_mask: u32,
    pub ring_entries: u32,
    pub flags: u32,
    pub dropped: u32,
    pub array: u32,
    pub resv1: u32,
    pub user_addr: u64,
}

/// Offsets of the CQ ring fields inside the CQ ring mmap
/// (`struct io_cqring_offsets`, 40 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_cqring_offsets {
    pub head: u32,
    pub tail: u32,
    pub ring_mask: u32,
    pub ring_entries: u32,
    pub overflow: u32,
    pub cqes: u32,
    pub flags: u32,
    pub resv1: u32,
    pub user_addr: u64,
}

/// Setup parameters exchanged with `io_uring_setup`
/// (`struct io_uring_params`, 120 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_params {
    pub sq_entries: u32,
    pub cq_entries: u32,
    pub flags: u32,
    pub sq_thread_cpu: u32,
    pub sq_thread_idle: u32,
    pub features: u32,
    pub wq_fd: u32,
    pub resv: [u32; 3],
    pub sq_off: io_sqring_offsets,
    pub cq_off: io_cqring_offsets,
}

/// One submission-queue entry (`struct io_uring_sqe`, 64 bytes).
///
/// The kernel struct is a stack of unions; this shim flattens it to the
/// fields the uring datapath uses (`off`/`addr`/`len` are the union's
/// primary 64/64/32-bit members, `op_flags` covers `rw_flags`/
/// `msg_flags`/`poll_events`/`timeout_flags`, and the trailing union is
/// represented as `buf_index` + padding).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct io_uring_sqe {
    pub opcode: u8,
    pub flags: u8,
    pub ioprio: u16,
    pub fd: c_int,
    pub off: u64,
    pub addr: u64,
    pub len: u32,
    pub op_flags: u32,
    pub user_data: u64,
    pub buf_index: u16,
    pub personality: u16,
    pub splice_fd_in: c_int,
    pub __pad2: [u64; 2],
}

impl Default for io_uring_sqe {
    fn default() -> Self {
        // SAFETY: all fields are plain integers; the kernel requires
        // unused fields to be zero.
        unsafe { std::mem::zeroed() }
    }
}

/// One completion-queue entry (`struct io_uring_cqe`, 16 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct io_uring_cqe {
    pub user_data: u64,
    pub res: i32,
    pub flags: u32,
}

extern "C" {
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn bind(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;

    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;

    pub fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut timespec,
    ) -> c_int;
    pub fn sendmmsg(sockfd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;

    /// Raw indirect syscall — used for `SYS_io_uring_{setup,enter,register}`,
    /// which glibc exposes no wrappers for.
    pub fn syscall(num: c_long, ...) -> c_long;

    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_roundtrip() {
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM, 0);
            assert!(fd >= 0, "socket() failed");
            let one: c_int = 1;
            let rc = setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &one as *const _ as *const c_void,
                std::mem::size_of::<c_int>() as socklen_t,
            );
            assert_eq!(
                rc,
                0,
                "setsockopt failed: {:?}",
                std::io::Error::last_os_error()
            );
            assert_eq!(close(fd), 0);
        }
    }

    #[test]
    fn sockaddr_in_layout() {
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<sockaddr>(), 16);
    }

    #[test]
    fn msghdr_layout_matches_64_bit_linux() {
        assert_eq!(std::mem::size_of::<iovec>(), 16);
        assert_eq!(std::mem::size_of::<msghdr>(), 56);
        // mmsghdr pads msg_len out to pointer alignment.
        assert_eq!(std::mem::size_of::<mmsghdr>(), 64);
        assert_eq!(std::mem::size_of::<timespec>(), 16);
    }

    #[test]
    fn epoll_event_layout() {
        let expect = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<epoll_event>(), expect);
    }

    #[test]
    fn epoll_eventfd_roundtrip() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0, "eventfd failed");
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 7,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);
            // Nothing written yet: wait with a zero timeout sees nothing.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);
            // Write the counter; the event becomes readable with our token.
            let one: u64 = 1;
            assert_eq!(
                write(ev, &one as *const u64 as *const c_void, 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let token = out[0].u64;
            assert_eq!(token, 7);
            let mut drained: u64 = 0;
            assert_eq!(read(ev, &mut drained as *mut u64 as *mut c_void, 8), 8);
            assert_eq!(drained, 1);
            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn io_uring_abi_layout() {
        assert_eq!(std::mem::size_of::<io_sqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_cqring_offsets>(), 40);
        assert_eq!(std::mem::size_of::<io_uring_params>(), 120);
        assert_eq!(std::mem::size_of::<io_uring_sqe>(), 64);
        assert_eq!(std::mem::size_of::<io_uring_cqe>(), 16);
        assert_eq!(std::mem::size_of::<__kernel_timespec>(), 16);
        // user_data sits at byte 32 of the SQE — the kernel reads it
        // there regardless of opcode, and the datapath's completion
        // routing depends on it.
        let sqe = io_uring_sqe::default();
        let base = &sqe as *const _ as usize;
        assert_eq!(&sqe.user_data as *const _ as usize - base, 32);
        assert_eq!(&sqe.addr as *const _ as usize - base, 16);
        assert_eq!(&sqe.len as *const _ as usize - base, 24);
    }

    #[test]
    fn io_uring_setup_nop_roundtrip() {
        // Build a tiny ring, submit one NOP, reap its completion. On
        // kernels without io_uring (or seccomp-restricted sandboxes)
        // skip gracefully — the datapath probes and falls back the
        // same way.
        unsafe {
            let mut params = io_uring_params::default();
            let fd = syscall(
                SYS_io_uring_setup,
                4u32,
                &mut params as *mut io_uring_params,
            ) as c_int;
            if fd < 0 {
                eprintln!(
                    "io_uring unavailable ({}), skipping live ring test",
                    std::io::Error::last_os_error()
                );
                return;
            }
            let sq_sz = params.sq_off.array as usize
                + params.sq_entries as usize * std::mem::size_of::<u32>();
            let cq_sz = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<io_uring_cqe>();
            let ring_sz = sq_sz.max(cq_sz);
            assert!(
                params.features & IORING_FEAT_SINGLE_MMAP != 0,
                "pre-5.4 kernels unexpected here"
            );
            let ring = mmap(
                std::ptr::null_mut(),
                ring_sz,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd,
                IORING_OFF_SQ_RING,
            );
            assert!(ring != MAP_FAILED, "ring mmap failed");
            let sqes = mmap(
                std::ptr::null_mut(),
                params.sq_entries as usize * std::mem::size_of::<io_uring_sqe>(),
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd,
                IORING_OFF_SQES,
            );
            assert!(sqes != MAP_FAILED, "sqes mmap failed");
            let base = ring as *mut u8;
            let sq_tail = base.add(params.sq_off.tail as usize) as *mut u32;
            let sq_mask = *(base.add(params.sq_off.ring_mask as usize) as *const u32);
            let sq_array = base.add(params.sq_off.array as usize) as *mut u32;
            let cq_head = base.add(params.cq_off.head as usize) as *mut u32;
            let cq_tail = base.add(params.cq_off.tail as usize) as *const u32;
            let cq_mask = *(base.add(params.cq_off.ring_mask as usize) as *const u32);
            let cqes = base.add(params.cq_off.cqes as usize) as *const io_uring_cqe;

            let tail = *sq_tail;
            let idx = tail & sq_mask;
            let sqe = (sqes as *mut io_uring_sqe).add(idx as usize);
            *sqe = io_uring_sqe::default();
            (*sqe).opcode = IORING_OP_NOP;
            (*sqe).user_data = 0xfeed;
            *sq_array.add(idx as usize) = idx;
            std::sync::atomic::fence(std::sync::atomic::Ordering::Release);
            *sq_tail = tail.wrapping_add(1);

            let rc = syscall(
                SYS_io_uring_enter,
                fd,
                1u32,
                1u32,
                IORING_ENTER_GETEVENTS,
                std::ptr::null_mut::<c_void>(),
                0usize,
            );
            assert_eq!(rc, 1, "enter: {}", std::io::Error::last_os_error());
            std::sync::atomic::fence(std::sync::atomic::Ordering::Acquire);
            assert_ne!(*cq_tail, *cq_head, "completion expected");
            let cqe = *cqes.add((*cq_head & cq_mask) as usize);
            assert_eq!(cqe.user_data, 0xfeed);
            assert_eq!(cqe.res, 0);
            *cq_head = (*cq_head).wrapping_add(1);

            munmap(
                sqes,
                params.sq_entries as usize * std::mem::size_of::<io_uring_sqe>(),
            );
            munmap(ring, ring_sz);
            close(fd);
        }
    }

    #[test]
    fn recvmmsg_batches_queued_datagrams() {
        use std::net::UdpSocket;
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        let dst = rx.local_addr().unwrap();
        for payload in [&b"one"[..], b"two", b"three"] {
            tx.send_to(payload, dst).expect("send");
        }
        // Give loopback a moment to queue all three.
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Nonblocking: a blocking recvmmsg with flags=0 and no timeout
        // would park until every slot fills, and only 3 of 4 ever will.
        // (The reactor runs all its sockets nonblocking for the same
        // reason.)
        rx.set_nonblocking(true).expect("nonblocking");
        use std::os::unix::io::AsRawFd;
        const SLOTS: usize = 4;
        let mut bufs = [[0u8; 32]; SLOTS];
        let mut iovs = [iovec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        }; SLOTS];
        let mut names = [sockaddr_in {
            sin_family: 0,
            sin_port: 0,
            sin_addr: in_addr { s_addr: 0 },
            sin_zero: [0; 8],
        }; SLOTS];
        let mut hdrs = [mmsghdr {
            msg_hdr: msghdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        }; SLOTS];
        for i in 0..SLOTS {
            iovs[i].iov_base = bufs[i].as_mut_ptr() as *mut c_void;
            iovs[i].iov_len = 32;
            hdrs[i].msg_hdr.msg_name = &mut names[i] as *mut sockaddr_in as *mut c_void;
            hdrs[i].msg_hdr.msg_namelen = std::mem::size_of::<sockaddr_in>() as socklen_t;
            hdrs[i].msg_hdr.msg_iov = &mut iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
        }
        let n = unsafe {
            recvmmsg(
                rx.as_raw_fd(),
                hdrs.as_mut_ptr(),
                SLOTS as c_uint,
                0,
                std::ptr::null_mut(),
            )
        };
        assert_eq!(n, 3, "all queued datagrams in one call");
        assert_eq!(&bufs[0][..hdrs[0].msg_len as usize], b"one");
        assert_eq!(&bufs[2][..hdrs[2].msg_len as usize], b"three");
        // Source address captured per message.
        let port = u16::from_be(names[0].sin_port);
        assert_eq!(port, tx.local_addr().unwrap().port());
    }
}
