//! Minimal in-tree stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, [`Strategy`] with `prop_map`, [`any`],
//! range strategies, tuple strategies, `collection::{vec, btree_set}`,
//! and `prop::sample::Index`. Unlike real proptest there is **no
//! shrinking** — a failing case panics with the generating seed, which
//! is deterministic per test name, so failures still reproduce exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// Macros expand in dependent crates; give them a stable path to rand.
pub use rand;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// The RNG strategies sample from.
pub type TestRng = SmallRng;

/// Per-test deterministic seed (FNV-1a of the test name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; the shim trims to keep the
        // suite fast, since there is no shrinking to pay for rarity.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> (A, B, C) {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                (self.start as u64
                    + rng.gen_range_u64(0, (self.end - self.start) as u64)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                if lo == 0 && hi == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.gen_range_u64(0, hi - lo + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// `Vec` of `elem`, with a length drawn from `size`. The size is a
    /// concrete `Range<usize>` (not a strategy) so bare integer literals
    /// at call sites infer `usize`.
    pub fn vec<S: Strategy>(
        elem: S,
        size: std::ops::Range<usize>,
    ) -> impl Strategy<Value = Vec<S::Value>> {
        VecStrategy { elem, size }
    }

    struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of `elem` with a target size drawn from `size`. The
    /// target may be unreachable when the element domain is small, so
    /// sampling gives up after a bounded number of draws.
    pub fn btree_set<S>(
        elem: S,
        size: std::ops::Range<usize>,
    ) -> impl Strategy<Value = BTreeSet<S::Value>>
    where
        S: Strategy,
        S::Value: Ord,
    {
        SetStrategy { elem, size }
    }

    struct SetStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S> Strategy for SetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = BTreeSet::new();
            let mut tries = 0usize;
            while set.len() < target && tries < target * 10 + 100 {
                set.insert(self.elem.sample(rng));
                tries += 1;
            }
            set
        }
    }
}

/// Sampling helpers (`prop::sample::Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};
    use crate::rand::RngCore;

    /// An index into a collection whose size is unknown at generation
    /// time; resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of length `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Namespace mirror so `prop::sample::Index` resolves via the prelude.
pub mod prop {
    pub use crate::sample;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest body (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define deterministic randomized tests. Each `fn name(arg in strategy)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!({ $cfg } $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!({ <$crate::ProptestConfig as Default>::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( { $cfg:expr } ) => {};
    (
        { $cfg:expr }
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::
                seed_from_u64($crate::seed_for(stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!({ $cfg } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n }),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair < 10 || (100..110).contains(&pair));
            prop_assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(set in crate::collection::btree_set(0u32..100, 0..10)) {
            prop_assert!(set.len() < 10);
        }
    }

    #[test]
    fn same_name_same_sequence() {
        use crate::rand::{rngs::SmallRng, RngCore, SeedableRng};
        let mut a = SmallRng::seed_from_u64(crate::seed_for("t"));
        let mut b = SmallRng::seed_from_u64(crate::seed_for("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
